//! The Tango border switch as a simulator agent.
//!
//! One [`TangoSwitch`] per edge site, playing both §4.2 roles: *"Each
//! server runs both the sender and the receiver-side eBPF program."*
//!
//! * **Sender side** — host traffic destined to the peer's host prefixes
//!   is matched in the remote-host table ("a table which can be
//!   statically configured as both endpoints are cooperating", §3),
//!   stamped with the local clock + per-tunnel sequence number,
//!   encapsulated onto the tunnel the installed selection picks, and
//!   forwarded to the border. Other host traffic is forwarded natively.
//! * **Receiver side** — Tango-encapsulated arrivals are validated,
//!   measured (one-way delay, loss, reordering), decapsulated, and the
//!   inner packet is delivered to the host side.
//! * **Probes** — optional periodic probes per tunnel (the paper's
//!   10 ms ping stream) keep paths measured even without app traffic.
//! * **Control loop** — at each control tick the configured
//!   [`PathPolicy`] reads the *peer's* receive-side stats (the
//!   cooperation feedback) and installs a fresh selection.

use crate::codec::{self, CodecError};
use crate::obs::SwitchObs;
use crate::policy::{PathPolicy, PathSnapshot, SelectionState, StaticPolicy};
use crate::report::{report_from_sink, MeasurementReport};
use crate::stats::SharedStats;
use crate::tunnel::Tunnel;
use std::collections::BTreeMap;
use tango_measure::saturating_owd_ns;
use tango_net::{IpCidr, PrefixTrie, SipKey};
use tango_obs::Registry;
use tango_sim::{Agent, Ctx, Packet, SimTime, SpanKind};
use tango_topology::AsId;

/// Timer tag for the control loop.
const TAG_CONTROL: u64 = 0;
/// Timer tag for in-band report emission.
const TAG_REPORT: u64 = 1;
/// Probe timer tags start here: tag = TAG_PROBE_BASE + tunnel index.
const TAG_PROBE_BASE: u64 = 2;

/// How a switch's controller learns the peer's receive-side view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedbackMode {
    /// Read the peer's stats sink directly (zero-delay out-of-band
    /// channel — the idealization documented in DESIGN.md §5).
    Shared,
    /// The peer periodically sends `REPORT` packets through the tunnels;
    /// feedback pays real wide-area latency and can be lost like any
    /// other packet. The period is the peer's report interval.
    InBand {
        /// How often this switch emits reports toward its peer.
        period: SimTime,
    },
}

/// What kind of packet a tunnel send carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxKind {
    Probe,
    App,
    Report,
}

/// Static configuration of one switch.
pub struct SwitchConfig {
    /// This switch's node id.
    pub id: AsId,
    /// The border router all wide-area traffic goes through (the
    /// co-located Vultr router in the prototype).
    pub border: AsId,
    /// Tunnels to the peer, one per exposed wide-area path.
    pub tunnels: Vec<Tunnel>,
    /// Host prefixes behind the *peer* (traffic to these is tunneled).
    pub remote_host_prefixes: Vec<IpCidr>,
    /// Send a probe on every tunnel at this period (`None` disables).
    pub probe_period: Option<SimTime>,
    /// Run the policy at this period (`None` = static selection forever).
    pub control_period: Option<SimTime>,
    /// Path id used until the policy first decides.
    pub initial_path: u16,
    /// Wide-area forwarding table, required when this switch *is* its
    /// own border (the multi-homed enterprise of §2): outgoing packets
    /// are routed by longest-prefix match instead of handed to a
    /// separate border router. `None` for the behind-a-border case.
    pub wan_table: Option<PrefixTrie<AsId>>,
    /// Cooperation feedback channel (see [`FeedbackMode`]).
    pub feedback: FeedbackMode,
    /// Shared secret for §6 authenticated telemetry. When set, every
    /// emitted tunnel packet carries a SipHash-2-4 trailer and every
    /// received tunnel packet must verify (unauthenticated or forged
    /// packets are counted in `auth_rejects` and discarded).
    pub auth_key: Option<SipKey>,
    /// Application-specific routing (§3: "it makes a performance-driven/
    /// application-specific routing decision"): inner packets whose
    /// DSCP/traffic-class byte appears here bypass the policy's selection
    /// and ride the mapped path (e.g. pin the control class to the
    /// lowest-jitter path while bulk follows the adaptive default).
    pub class_map: BTreeMap<u8, u16>,
    /// Labels for the paths this switch *receives* on — i.e. the peer's
    /// tunnel labels, which share path ids with ours by provisioning
    /// convention but may differ in name (LA's tunnel 3 is "Cogent",
    /// NY's is "Level3"). Used to pre-register the stats sink.
    pub rx_labels: Vec<(u16, String)>,
    /// Optional metric registry: per-tunnel tx/rx/loss/reorder, encap
    /// byte histogram, reject counters, published under
    /// `dataplane.<id>.…` (see `tango-obs`). `None` disables.
    pub obs: Option<Registry>,
}

/// The Tango switch agent.
pub struct TangoSwitch {
    id: AsId,
    border: AsId,
    tunnels: BTreeMap<u16, Tunnel>,
    remote_hosts: PrefixTrie<()>,
    seq: BTreeMap<u16, u32>,
    selection: SelectionState,
    policy: Box<dyn PathPolicy>,
    probe_period: Option<SimTime>,
    control_period: Option<SimTime>,
    /// Everything this switch observes (receive-side measurements and
    /// send-side counters). The peer's controller reads the path stats.
    my_stats: SharedStats,
    /// The peer switch's sink: *their* receive-side view of *our*
    /// outgoing paths — the input to our policy (Shared feedback mode).
    peer_stats: SharedStats,
    wan_table: Option<PrefixTrie<AsId>>,
    feedback: FeedbackMode,
    auth_key: Option<SipKey>,
    class_map: BTreeMap<u8, u16>,
    /// Latest peer view received in-band (InBand feedback mode).
    peer_view: BTreeMap<u16, PathSnapshot>,
    /// Per-path progress tracking for the silence signal: (sample count
    /// at the last control tick that saw it advance, local time of that
    /// tick). Kept in *this* switch's clock so the derived `silence_ns`
    /// never crosses clock domains.
    progress: BTreeMap<u16, (u64, u64)>,
    /// Metric handles (`None` when the config carried no registry).
    obs: Option<SwitchObs>,
}

impl TangoSwitch {
    /// Build a switch. `my_stats` is written by this switch; `peer_stats`
    /// is the peer's sink (read at control ticks).
    pub fn new(
        config: SwitchConfig,
        policy: Box<dyn PathPolicy>,
        my_stats: SharedStats,
        peer_stats: SharedStats,
    ) -> Self {
        let mut remote_hosts = PrefixTrie::new();
        for p in &config.remote_host_prefixes {
            remote_hosts.insert(*p, ());
        }
        let tunnels: BTreeMap<u16, Tunnel> =
            config.tunnels.into_iter().map(|t| (t.id, t)).collect();
        let obs = config.obs.as_ref().map(|registry| {
            // Pre-register both directions: our outgoing tunnels and the
            // paths we receive on, so the export schema is complete even
            // before any traffic flows.
            let mut path_ids: Vec<u16> = tunnels.keys().copied().collect();
            path_ids.extend(config.rx_labels.iter().map(|&(id, _)| id));
            path_ids.sort_unstable();
            path_ids.dedup();
            SwitchObs::new(registry, config.id, &path_ids)
        });
        {
            // The sink records *incoming* measurements, so its labels are
            // the peer's path names (rx_labels), not our outgoing ones.
            let mut sink = my_stats.lock();
            for (id, label) in &config.rx_labels {
                sink.register_path(*id, label.clone());
            }
        }
        TangoSwitch {
            id: config.id,
            border: config.border,
            wan_table: config.wan_table,
            feedback: config.feedback,
            auth_key: config.auth_key,
            class_map: config.class_map,
            peer_view: BTreeMap::new(),
            progress: BTreeMap::new(),
            obs,
            tunnels,
            remote_hosts,
            seq: BTreeMap::new(),
            selection: SelectionState::new(crate::policy::Selection::Single(config.initial_path)),
            policy,
            probe_period: config.probe_period,
            control_period: config.control_period,
            my_stats,
            peer_stats,
        }
    }

    /// Convenience: a switch with a fixed single-path policy.
    pub fn with_static_path(
        config: SwitchConfig,
        my_stats: SharedStats,
        peer_stats: SharedStats,
    ) -> Self {
        let path = config.initial_path;
        Self::new(
            config,
            Box::new(StaticPolicy::single(path, "static")),
            my_stats,
            peer_stats,
        )
    }

    /// This switch's node id.
    pub fn id(&self) -> AsId {
        self.id
    }

    /// Arm a switch's timers (probes + control loop). Call once after
    /// installing the agent; `start` staggers different switches.
    pub fn arm_timers(
        sim: &mut tango_sim::NetworkSim,
        node: AsId,
        probes: bool,
        control: bool,
        reports: bool,
        tunnel_count: usize,
        start: SimTime,
    ) {
        if probes {
            for i in 0..tunnel_count {
                sim.schedule_timer_at(start, node, TAG_PROBE_BASE + i as u64);
            }
        }
        if control {
            sim.schedule_timer_at(start, node, TAG_CONTROL);
        }
        if reports {
            sim.schedule_timer_at(start, node, TAG_REPORT);
        }
    }

    fn next_seq(&mut self, path: u16) -> u32 {
        let s = self.seq.entry(path).or_insert(0);
        let v = *s;
        *s = s.wrapping_add(1);
        v
    }

    /// Encapsulate `pkt` (whose bytes are the inner payload: an app
    /// packet, an encoded report, or nothing for a probe) onto a tunnel
    /// in place and send it toward the wide area. Zero-copy when the
    /// packet carries `ENCAP_OVERHEAD` bytes of headroom.
    fn send_on_tunnel(&mut self, ctx: &mut Ctx<'_>, path: u16, mut pkt: Packet, kind: TxKind) {
        if !self.tunnels.contains_key(&path) {
            self.my_stats.lock().tx_no_tunnel += 1;
            ctx.recycle(pkt);
            return;
        }
        let seq = self.next_seq(path);
        let ts = ctx.local_ns();
        let key = self.auth_key.as_ref();
        let Some(tunnel) = self.tunnels.get(&path) else {
            // Unreachable: guarded by the contains_key check above (kept
            // separate because next_seq also borrows self mutably).
            ctx.recycle(pkt);
            return;
        };
        match kind {
            TxKind::Probe => codec::probe_packet_in_place(tunnel, &mut pkt, seq, ts, key),
            TxKind::App => codec::encapsulate_in_place(tunnel, &mut pkt, seq, ts, key),
            TxKind::Report => codec::report_packet_in_place(tunnel, &mut pkt, seq, ts, key),
        }
        ctx.span(SpanKind::Encap {
            path,
            payload: match kind {
                TxKind::App => 0,
                TxKind::Probe => 1,
                TxKind::Report => 2,
            },
        });
        {
            let mut sink = self.my_stats.lock();
            match kind {
                TxKind::Probe => sink.probes_sent += 1,
                TxKind::App => sink.tx_encapsulated += 1,
                TxKind::Report => sink.reports_sent += 1,
            }
        }
        if let Some(obs) = &mut self.obs {
            obs.on_tx(
                path,
                matches!(kind, TxKind::Probe),
                matches!(kind, TxKind::Report),
                pkt.len(),
            );
        }
        self.transmit_wan(ctx, pkt);
    }

    /// Send toward the wide area: via the border router, or — when this
    /// switch is its own border — by our own LPM table.
    fn transmit_wan(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if self.border != self.id {
            ctx.transmit(self.border, pkt);
            return;
        }
        let next = pkt.dst_addr().and_then(|d| {
            self.wan_table
                .as_ref()
                .and_then(|t| t.longest_match(d).map(|(_, n)| *n))
        });
        match next {
            Some(n) if n != self.id => ctx.transmit(n, pkt),
            _ => {
                ctx.count_no_route();
                ctx.recycle(pkt);
            }
        }
    }

    fn snapshots(&mut self, now_local_ns: u64) -> BTreeMap<u16, PathSnapshot> {
        let mut out = if matches!(self.feedback, FeedbackMode::InBand { .. }) {
            self.peer_view.clone()
        } else {
            let sink = self.peer_stats.lock();
            let freshest: Option<u64> = sink
                .paths()
                .filter_map(|(_, p)| p.owd.times_ns().last().copied())
                .max();
            let mut out = BTreeMap::new();
            for (id, p) in sink.paths() {
                let last_rx = p.owd.times_ns().last().copied();
                let staleness_ns = match (freshest, last_rx) {
                    (Some(f), Some(l)) => Some(f.saturating_sub(l)),
                    _ => None,
                };
                out.insert(
                    id,
                    PathSnapshot {
                        owd_ewma_ns: p.owd_ewma.get(),
                        last_owd_ns: p.owd.values().last().copied(),
                        jitter_ns: p.rolling.std(),
                        loss_rate: p.seq.loss_rate(),
                        samples: p.owd.len() as u64,
                        staleness_ns,
                        silence_ns: None,
                    },
                );
            }
            out
        };
        // Overlay the silence signal: a path is "silent" since the last
        // control tick at which its sample count advanced. Both the count
        // comparison and the timestamps live on *this* switch, so the
        // signal is immune to clock offset and works identically in
        // Shared and InBand feedback modes.
        for (id, snap) in &mut out {
            let entry = self
                .progress
                .entry(*id)
                .or_insert((snap.samples, now_local_ns));
            if snap.samples > entry.0 {
                *entry = (snap.samples, now_local_ns);
            }
            snap.silence_ns = Some(now_local_ns.saturating_sub(entry.1));
        }
        out
    }
}

/// The DSCP/traffic-class byte of an IP packet (IPv4 DSCP/ECN byte or
/// IPv6 traffic class), if parseable.
fn traffic_class_of(bytes: &[u8]) -> Option<u8> {
    match bytes.first().map(|b| b >> 4)? {
        4 => tango_net::Ipv4Packet::new_checked(bytes)
            .ok()
            .map(|p| p.dscp_ecn()),
        6 => tango_net::Ipv6Packet::new_checked(bytes)
            .ok()
            .map(|p| p.traffic_class()),
        _ => None,
    }
}

impl Agent for TangoSwitch {
    fn on_host_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let tango_destined = pkt
            .dst_addr()
            .map(|d| self.remote_hosts.longest_match(d).is_some())
            .unwrap_or(false);
        if tango_destined {
            // §3 application-specific override first, then the installed
            // performance-driven selection.
            let class_path = if self.class_map.is_empty() {
                None
            } else {
                traffic_class_of(pkt.bytes())
                    .and_then(|tc| self.class_map.get(&tc).copied())
                    .filter(|p| self.tunnels.contains_key(p))
            };
            if let Some(path) = class_path.or_else(|| self.selection.choose()) {
                self.send_on_tunnel(ctx, path, pkt, TxKind::App);
                return;
            }
        }
        // Non-Tango destination (or empty selection): native forwarding.
        self.my_stats.lock().tx_untunneled += 1;
        self.transmit_wan(ctx, pkt);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, mut pkt: Packet) {
        if codec::looks_like_tango(pkt.bytes()) {
            let require_auth = self.auth_key.is_some();
            match codec::decapsulate_in_place(&mut pkt, self.auth_key.as_ref(), require_auth) {
                Ok(d) => {
                    let rx_local = ctx.local_ns();
                    // Anti-replay, only once the tag proves the packet is
                    // the peer's: a recorded-and-retransmitted packet has
                    // a valid tag but a stale sequence number. (Without a
                    // key an attacker forges fresh sequences trivially, so
                    // the window would add cost without security.)
                    if self.auth_key.is_some() {
                        let mut sink = self.my_stats.lock();
                        let fresh = sink
                            .path_mut(d.tango.path_id)
                            .replay
                            .observe(d.tango.sequence);
                        if !fresh {
                            sink.replay_rejects += 1;
                            drop(sink);
                            if let Some(obs) = &self.obs {
                                obs.on_replay_reject();
                            }
                            ctx.span(SpanKind::RxReject { reason: 1 });
                            ctx.recycle(pkt);
                            return;
                        }
                    }
                    ctx.span(SpanKind::Decap {
                        path: d.tango.path_id,
                    });
                    // Signed and saturating: clock offsets can legally make
                    // this negative, and adversarial far-future timestamps
                    // must clamp rather than wrap.
                    let owd = saturating_owd_ns(rx_local, d.tango.timestamp_ns);
                    // Reports and probes are infrastructure, not app data.
                    let infra = d.tango.flags.is_probe() || d.tango.flags.is_report();
                    {
                        let mut sink = self.my_stats.lock();
                        let path = sink.path_mut(d.tango.path_id);
                        let admitted =
                            path.record_owd_gated(rx_local, owd as f64, d.tango.sequence, infra);
                        if let Some(obs) = &mut self.obs {
                            obs.on_rx(d.tango.path_id, path);
                        }
                        if !admitted {
                            sink.implausible_owd += 1;
                            if let Some(obs) = &self.obs {
                                obs.on_implausible();
                            }
                        }
                    }
                    if d.tango.flags.is_report() {
                        // pkt is now the stripped inner = the encoded report.
                        match MeasurementReport::decode(pkt.bytes()) {
                            Ok(report) => {
                                self.peer_view = report.to_snapshots();
                                self.my_stats.lock().reports_received += 1;
                            }
                            Err(_) => {
                                self.my_stats.lock().reports_rejected += 1;
                            }
                        }
                    }
                    // Inner app packet continues to the host side (outside
                    // the modeled scope — the host is attached here).
                }
                Err(CodecError::Auth) => {
                    self.my_stats.lock().auth_rejects += 1;
                    if let Some(obs) = &self.obs {
                        obs.on_auth_reject();
                    }
                    ctx.span(SpanKind::RxReject { reason: 0 });
                }
                Err(_) => {
                    self.my_stats.lock().record_reject(None);
                    if let Some(obs) = &self.obs {
                        obs.on_reject();
                    }
                }
            }
        } else {
            // Plain (un-tunneled) packet for our hosts.
            self.my_stats.lock().plain_rx += 1;
            if let Some(obs) = &self.obs {
                obs.on_plain_rx();
            }
        }
        // Every network-side arrival ends its life here: recycle the
        // buffer for the next allocation.
        ctx.recycle(pkt);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == TAG_CONTROL {
            let now = ctx.local_ns();
            let snaps = self.snapshots(now);
            let decision = self.policy.decide(now, &snaps);
            self.selection.install(decision.clone());
            {
                let mut sink = self.my_stats.lock();
                sink.control_ticks += 1;
                sink.selection_history.push((now, decision.paths()));
            }
            if let Some(period) = self.control_period {
                ctx.schedule_timer(period, TAG_CONTROL);
            }
            return;
        }
        if tag == TAG_REPORT {
            // Digest what *we* receive and ship it to the peer so their
            // controller can steer their outgoing traffic: cooperation,
            // paid for in-band.
            let report = report_from_sink(&self.my_stats.lock()).encode();
            // Ride the currently selected path (falls back to the first
            // tunnel before any selection exists).
            let path = self
                .selection
                .choose()
                .or_else(|| self.tunnels.keys().next().copied());
            if let Some(path) = path {
                let mut pkt = ctx.alloc_packet(codec::ENCAP_OVERHEAD);
                pkt.append(&report);
                self.send_on_tunnel(ctx, path, pkt, TxKind::Report);
            }
            if let FeedbackMode::InBand { period } = self.feedback {
                ctx.schedule_timer(period, TAG_REPORT);
            }
            return;
        }
        // Probe timers. The policy may gate the emission (backoff
        // re-probing into a path believed down); the timer itself keeps
        // its cadence so a re-admitted path resumes probing immediately.
        let idx = (tag - TAG_PROBE_BASE) as usize;
        let path = self.tunnels.keys().copied().nth(idx);
        if let Some(path) = path {
            if self.policy.allow_probe(ctx.local_ns(), path) {
                let pkt = ctx.alloc_packet(codec::ENCAP_OVERHEAD);
                self.send_on_tunnel(ctx, path, pkt, TxKind::Probe);
            } else {
                self.my_stats.lock().probes_withheld += 1;
            }
        }
        if let Some(period) = self.probe_period {
            ctx.schedule_timer(period, tag);
        }
    }
}
