//! Receive-side per-path statistics.
//!
//! The receiving switch attributes every valid tunnel packet to a path,
//! computes the one-way delay `local_now − sender_timestamp`, and feeds
//! sequence numbers to a loss/reorder tracker. The resulting [`StatsSink`]
//! is shared with the *peer's* controller — the cooperation channel of
//! the architecture. We model that channel as a shared handle with zero
//! feedback delay (see DESIGN.md §5); the control loop only samples it at
//! its own cadence, so the idealization is mild.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use tango_measure::{Ewma, PlausibilityGate, ReplayWindow, RollingWindow, SeqTracker, TimeSeries};

/// Live statistics for one path (tunnel).
#[derive(Debug)]
pub struct PathStats {
    /// Display label ("NTT", "GTT", ...).
    pub label: String,
    /// Raw one-way-delay samples, keyed by *receiver local* time (ns).
    /// Values may be offset by the constant clock skew — relative
    /// comparisons across paths remain exact (§4.2).
    pub owd: TimeSeries,
    /// Smoothed one-way delay.
    pub owd_ewma: Ewma,
    /// Rolling 1-second window (the paper's jitter metric).
    pub rolling: RollingWindow,
    /// Loss / reorder / duplicate tracking from tunnel sequence numbers.
    pub seq: SeqTracker,
    /// Packets rejected before measurement (bad checksum / header).
    pub rejected: u64,
    /// App (non-probe) packets delivered on this path.
    pub app_delivered: u64,
    /// One-way delays of *application* packets only (what end users
    /// actually experienced on this path), keyed by receiver local time.
    pub app_owd: TimeSeries,
    /// Receiver-local time of the most recent accepted packet (probe or
    /// app), ns. `None` until the first arrival. The raw ingredient of
    /// the per-tunnel "silence" signal the health machinery consumes.
    pub last_rx_local_ns: Option<u64>,
    /// Anti-replay window over tunnel sequence numbers (consulted only
    /// when the pairing authenticates, since without a key an attacker
    /// can forge arbitrary fresh sequence numbers anyway).
    pub replay: ReplayWindow,
    /// Plausibility gate over the OWD series: quarantines samples too
    /// far from the smoothed reference before they reach the EWMA the
    /// policies rank by.
    pub gate: PlausibilityGate,
    /// OWD samples the gate quarantined on this path.
    pub implausible_owd: u64,
}

impl PathStats {
    fn new(label: String) -> Self {
        PathStats {
            label,
            owd: TimeSeries::new(),
            owd_ewma: Ewma::new(0.05),
            rolling: RollingWindow::new(1_000_000_000),
            seq: SeqTracker::new(),
            rejected: 0,
            app_delivered: 0,
            app_owd: TimeSeries::new(),
            last_rx_local_ns: None,
            replay: ReplayWindow::new(),
            gate: PlausibilityGate::default(),
            implausible_owd: 0,
        }
    }

    /// Record a valid measurement.
    pub fn record_owd(&mut self, rx_local_ns: u64, owd_ns: f64, sequence: u32, probe: bool) {
        self.owd.push(rx_local_ns, owd_ns);
        self.owd_ewma.update(owd_ns);
        self.rolling.push(rx_local_ns, owd_ns);
        self.seq.record(sequence);
        self.last_rx_local_ns = Some(rx_local_ns);
        if !probe {
            self.app_delivered += 1;
            self.app_owd.push(rx_local_ns, owd_ns);
        }
    }

    /// Record a measurement through the plausibility gate. Returns
    /// whether the OWD value was admitted into the delay views.
    ///
    /// A quarantined sample still proves the packet *arrived*: sequence
    /// tracking, the silence signal, and app delivery counts advance
    /// regardless, so a poisoned timestamp cannot masquerade as path
    /// death. Only the delay views (`owd`, EWMA, rolling window,
    /// `app_owd`) are withheld.
    pub fn record_owd_gated(
        &mut self,
        rx_local_ns: u64,
        owd_ns: f64,
        sequence: u32,
        probe: bool,
    ) -> bool {
        if self.gate.admit(owd_ns) {
            self.record_owd(rx_local_ns, owd_ns, sequence, probe);
            return true;
        }
        self.implausible_owd += 1;
        self.seq.record(sequence);
        self.last_rx_local_ns = Some(rx_local_ns);
        if !probe {
            self.app_delivered += 1;
        }
        false
    }

    /// Time since the last accepted packet, given the receiver's current
    /// local clock reading. `None` = nothing ever arrived.
    pub fn silence_ns(&self, now_local_ns: u64) -> Option<u64> {
        self.last_rx_local_ns
            .map(|l| now_local_ns.saturating_sub(l))
    }
}

/// All paths' statistics at one switch — receive-side measurements plus
/// send-side counters (the peer's controller reads only the path stats).
#[derive(Debug, Default)]
pub struct StatsSink {
    paths: BTreeMap<u16, PathStats>,
    /// Tango-looking packets that failed validation and could not be
    /// attributed to any path.
    pub unattributed_rejects: u64,
    /// App packets this switch encapsulated onto tunnels.
    pub tx_encapsulated: u64,
    /// Host packets forwarded natively (non-Tango destinations).
    pub tx_untunneled: u64,
    /// Probes this switch emitted.
    pub probes_sent: u64,
    /// Probe timer firings the policy suppressed (backoff gating on a
    /// path believed down).
    pub probes_withheld: u64,
    /// Sends requested on an unknown tunnel id (a control-plane bug).
    pub tx_no_tunnel: u64,
    /// Control-loop ticks executed.
    pub control_ticks: u64,
    /// Plain (un-encapsulated) packets received for local hosts.
    pub plain_rx: u64,
    /// (local time ns, path ids selected) after each control decision —
    /// the experiments use this to plot which path carried traffic when.
    pub selection_history: Vec<(u64, Vec<u16>)>,
    /// In-band measurement reports sent to the peer.
    pub reports_sent: u64,
    /// In-band measurement reports received and applied.
    pub reports_received: u64,
    /// Reports received but undecodable (counted, never applied).
    pub reports_rejected: u64,
    /// Packets rejected by telemetry authentication (§6 mode).
    pub auth_rejects: u64,
    /// Authenticated packets rejected as replays (valid tag, stale or
    /// already-seen sequence number).
    pub replay_rejects: u64,
    /// OWD samples quarantined by plausibility gating, all paths.
    pub implausible_owd: u64,
}

impl StatsSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-register a path so its label is known before traffic flows.
    pub fn register_path(&mut self, id: u16, label: impl Into<String>) {
        self.paths
            .entry(id)
            .or_insert_with(|| PathStats::new(label.into()));
    }

    /// Get-or-create a path entry.
    pub fn path_mut(&mut self, id: u16) -> &mut PathStats {
        self.paths
            .entry(id)
            .or_insert_with(|| PathStats::new(format!("path-{id}")))
    }

    /// Read a path's stats.
    pub fn path(&self, id: u16) -> Option<&PathStats> {
        self.paths.get(&id)
    }

    /// All registered paths.
    pub fn paths(&self) -> impl Iterator<Item = (u16, &PathStats)> {
        self.paths.iter().map(|(k, v)| (*k, v))
    }

    /// Count a rejected packet (attributed to a path if possible).
    pub fn record_reject(&mut self, path: Option<u16>) {
        match path {
            Some(id) => self.path_mut(id).rejected += 1,
            None => self.unattributed_rejects += 1,
        }
    }
}

/// A shareable handle to a sink: the receiver writes, the peer's
/// controller reads.
pub type SharedStats = Arc<Mutex<StatsSink>>;

/// Create a fresh shared sink.
pub fn shared_sink() -> SharedStats {
    Arc::new(Mutex::new(StatsSink::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_updates_all_views() {
        let mut s = StatsSink::new();
        s.register_path(0, "NTT");
        for i in 0..10u32 {
            s.path_mut(0)
                .record_owd(u64::from(i) * 1_000_000, 36_500_000.0, i, true);
        }
        let p = s.path(0).unwrap();
        assert_eq!(p.label, "NTT");
        assert_eq!(p.owd.len(), 10);
        assert_eq!(p.seq.received(), 10);
        assert_eq!(p.seq.lost(), 0);
        assert!((p.owd_ewma.get().unwrap() - 36_500_000.0).abs() < 1.0);
        assert_eq!(p.app_delivered, 0);
        assert_eq!(p.last_rx_local_ns, Some(9_000_000));
        assert_eq!(p.silence_ns(14_000_000), Some(5_000_000));
    }

    #[test]
    fn silence_none_before_first_arrival() {
        let mut s = StatsSink::new();
        s.register_path(0, "NTT");
        assert_eq!(s.path(0).unwrap().silence_ns(1_000), None);
    }

    #[test]
    fn app_packets_counted_separately() {
        let mut s = StatsSink::new();
        s.path_mut(1).record_owd(0, 1.0, 0, false);
        s.path_mut(1).record_owd(10, 1.0, 1, true);
        assert_eq!(s.path(1).unwrap().app_delivered, 1);
    }

    #[test]
    fn rejects_attributed_and_not() {
        let mut s = StatsSink::new();
        s.record_reject(Some(2));
        s.record_reject(None);
        assert_eq!(s.path(2).unwrap().rejected, 1);
        assert_eq!(s.unattributed_rejects, 1);
    }

    #[test]
    fn register_is_idempotent() {
        let mut s = StatsSink::new();
        s.register_path(0, "NTT");
        s.path_mut(0).record_owd(0, 5.0, 0, true);
        s.register_path(0, "renamed");
        assert_eq!(s.path(0).unwrap().label, "NTT");
        assert_eq!(s.path(0).unwrap().owd.len(), 1);
    }

    #[test]
    fn gated_record_quarantines_poison_but_keeps_liveness() {
        let mut s = StatsSink::new();
        s.register_path(0, "GTT");
        // Establish an honest 28 ms reference.
        for i in 0..10u32 {
            assert!(s.path_mut(0).record_owd_gated(
                u64::from(i) * 1_000_000,
                27_900_000.0,
                i,
                true
            ));
        }
        // Poisoned sample claiming a 10 s delay.
        let admitted = s.path_mut(0).record_owd_gated(10_000_000, 10e9, 10, false);
        assert!(!admitted);
        let p = s.path(0).unwrap();
        assert_eq!(p.implausible_owd, 1);
        // Delay views untouched by the poison...
        assert_eq!(p.owd.len(), 10);
        assert!((p.owd_ewma.get().unwrap() - 27_900_000.0).abs() < 1.0);
        // ...but liveness signals advanced: the packet DID arrive.
        assert_eq!(p.seq.received(), 11);
        assert_eq!(p.last_rx_local_ns, Some(10_000_000));
        assert_eq!(p.app_delivered, 1);
    }

    #[test]
    fn shared_sink_is_actually_shared() {
        let a = shared_sink();
        let b = Arc::clone(&a);
        a.lock().path_mut(0).record_owd(0, 1.0, 0, true);
        assert_eq!(b.lock().path(0).unwrap().owd.len(), 1);
    }
}
