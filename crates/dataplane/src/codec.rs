//! Encapsulation and decapsulation — the pure packet transformations of
//! the two eBPF programs (§4.2), portable in spirit to eBPF/P4.
//!
//! Wire layout of a tunneled packet:
//!
//! ```text
//! outer IPv6 (40 B) | UDP (8 B) | Tango header (20 B) | inner IP packet
//! ```
//!
//! The outer UDP checksum covers the Tango header and inner packet, so a
//! corrupted timestamp can never become a delay sample ([`decapsulate`]
//! verifies before trusting anything).

use crate::tunnel::Tunnel;
use tango_net::siphash::{siphash24, tags_equal, SipKey};
use tango_net::{
    Ipv6Packet, Ipv6Repr, TangoFlags, TangoPacket, TangoRepr, UdpPacket, UdpRepr, TANGO_HEADER_LEN,
    TANGO_UDP_PORT,
};
use tango_sim::Packet;

/// Length of the SipHash-2-4 authentication trailer.
pub const TANGO_AUTH_TAG_LEN: usize = 8;
/// `inner_proto` code for an in-band measurement report payload.
pub const INNER_PROTO_REPORT: u16 = 253;

/// Bytes the encapsulation prepends in front of the inner packet: outer
/// IPv6 + UDP + Tango header. A [`Packet`] carrying at least this much
/// headroom rides the zero-copy in-place path; the optional auth trailer
/// is *appended*, so it needs no headroom.
pub const ENCAP_OVERHEAD: usize =
    tango_net::ipv6::HEADER_LEN + tango_net::udp::HEADER_LEN + TANGO_HEADER_LEN;

/// Offset of the Tango header within an encapsulated wire image.
const TANGO_OFF: usize = tango_net::ipv6::HEADER_LEN + tango_net::udp::HEADER_LEN;

/// Errors from the decapsulation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The outer packet is not valid IPv6.
    OuterIp,
    /// The outer packet is not UDP on the Tango port.
    NotTangoUdp,
    /// The UDP checksum failed (corruption in flight).
    Checksum,
    /// The Tango header is absent or malformed.
    TangoHeader,
    /// The inner packet length is inconsistent.
    Inner,
    /// Authentication failed: missing, truncated, or forged tag (§6
    /// trustworthy-telemetry mode).
    Auth,
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            CodecError::OuterIp => "outer packet is not valid IPv6",
            CodecError::NotTangoUdp => "not Tango-encapsulated UDP",
            CodecError::Checksum => "outer UDP checksum mismatch",
            CodecError::TangoHeader => "bad Tango header",
            CodecError::Inner => "inconsistent inner packet",
            CodecError::Auth => "authentication tag missing or invalid",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CodecError {}

/// Inner-protocol codes in the Tango header.
fn inner_proto_of(inner: &[u8]) -> u16 {
    match inner.first().map(|b| b >> 4) {
        Some(4) => 4,  // IPv4-in-Tango
        Some(6) => 41, // IPv6-in-Tango
        _ => 0,
    }
}

/// Sender-side program: timestamp + encapsulate an inner IP packet onto a
/// tunnel. `timestamp_ns` is the *sender's node-local clock*.
pub fn encapsulate(tunnel: &Tunnel, inner: &[u8], sequence: u32, timestamp_ns: u64) -> Vec<u8> {
    build(
        tunnel,
        inner,
        None,
        sequence,
        timestamp_ns,
        TangoFlags::measured(),
        None,
    )
}

/// A bare measurement probe (no inner packet) — the paper generates
/// probe traffic along each path every 10 ms (§5).
pub fn probe_packet(tunnel: &Tunnel, sequence: u32, timestamp_ns: u64) -> Vec<u8> {
    build(
        tunnel,
        &[],
        None,
        sequence,
        timestamp_ns,
        TangoFlags::probe(),
        None,
    )
}

/// [`encapsulate`] with an authentication trailer (§6).
pub fn encapsulate_auth(
    tunnel: &Tunnel,
    inner: &[u8],
    sequence: u32,
    timestamp_ns: u64,
    key: &SipKey,
) -> Vec<u8> {
    build(
        tunnel,
        inner,
        None,
        sequence,
        timestamp_ns,
        TangoFlags::measured(),
        Some(key),
    )
}

/// [`probe_packet`] with an authentication trailer (§6).
pub fn probe_packet_auth(
    tunnel: &Tunnel,
    sequence: u32,
    timestamp_ns: u64,
    key: &SipKey,
) -> Vec<u8> {
    build(
        tunnel,
        &[],
        None,
        sequence,
        timestamp_ns,
        TangoFlags::probe(),
        Some(key),
    )
}

/// An in-band measurement report packet: the cooperation feedback
/// channel. `report` is a `report::MeasurementReport::encode()` payload.
pub fn report_packet(
    tunnel: &Tunnel,
    sequence: u32,
    timestamp_ns: u64,
    report: &[u8],
    key: Option<&SipKey>,
) -> Vec<u8> {
    build(
        tunnel,
        report,
        Some(INNER_PROTO_REPORT),
        sequence,
        timestamp_ns,
        TangoFlags::report(),
        key,
    )
}

// tango-lint: allow(hot-path-panic) payload and buf are allocated exactly sized right above every emit and slice
fn build(
    tunnel: &Tunnel,
    inner: &[u8],
    inner_proto_override: Option<u16>,
    sequence: u32,
    timestamp_ns: u64,
    flags: TangoFlags,
    key: Option<&SipKey>,
) -> Vec<u8> {
    let flags = if key.is_some() {
        flags.with_auth()
    } else {
        flags
    };
    let tango = TangoRepr {
        flags,
        path_id: tunnel.id,
        inner_proto: inner_proto_override.unwrap_or_else(|| inner_proto_of(inner)),
        sequence,
        timestamp_ns,
    };
    // Assemble the Tango payload (header + inner + optional auth tag)
    // first, then wrap it: the tag covers header and inner.
    let tag_len = if key.is_some() { TANGO_AUTH_TAG_LEN } else { 0 };
    let mut payload = vec![0u8; TANGO_HEADER_LEN + inner.len() + tag_len];
    {
        let mut tango_pkt = TangoPacket::new_unchecked(&mut payload[..]);
        tango.emit(&mut tango_pkt).expect("sized buffer");
    }
    payload[TANGO_HEADER_LEN..TANGO_HEADER_LEN + inner.len()].copy_from_slice(inner);
    if let Some(key) = key {
        let tag = siphash24(key, &payload[..TANGO_HEADER_LEN + inner.len()]);
        let at = TANGO_HEADER_LEN + inner.len();
        payload[at..].copy_from_slice(&tag.to_be_bytes());
    }

    let udp = UdpRepr {
        src_port: tunnel.src_port,
        dst_port: TANGO_UDP_PORT,
        payload_len: payload.len(),
    };
    let ip = Ipv6Repr {
        src_addr: tunnel.local_endpoint,
        dst_addr: tunnel.remote_endpoint,
        next_header: 17,
        payload_len: udp.total_len(),
        hop_limit: 64,
        traffic_class: 0,
        // A fixed flow label per tunnel: flow-label-aware ECMP hashes the
        // tunnel onto one lane too.
        flow_label: u32::from(tunnel.id) + 1,
    };
    let mut buf = vec![0u8; ip.total_len()];
    let mut ip_pkt = Ipv6Packet::new_unchecked(&mut buf[..]);
    ip.emit(&mut ip_pkt).expect("sized buffer");
    let mut udp_pkt = UdpPacket::new_unchecked(ip_pkt.payload_mut());
    udp.emit(&mut udp_pkt).expect("sized buffer");
    udp_pkt.payload_mut().copy_from_slice(&payload);
    udp_pkt.fill_checksum_v6(tunnel.local_endpoint, tunnel.remote_endpoint);
    buf
}

/// [`encapsulate`]/[`encapsulate_auth`] operating in place: the packet's
/// current bytes become the inner payload and the outer headers are
/// written into its headroom (the auth trailer, when `key` is set, is
/// appended). Zero-copy when the packet carries [`ENCAP_OVERHEAD`] bytes
/// of headroom; otherwise falls back to a copying rebuild. The resulting
/// wire image is byte-identical to the `Vec`-returning builders.
pub fn encapsulate_in_place(
    tunnel: &Tunnel,
    pkt: &mut Packet,
    sequence: u32,
    timestamp_ns: u64,
    key: Option<&SipKey>,
) {
    build_in_place(
        tunnel,
        pkt,
        None,
        sequence,
        timestamp_ns,
        TangoFlags::measured(),
        key,
    );
}

/// [`probe_packet`]/[`probe_packet_auth`] in place: `pkt` must be empty
/// (probes carry no inner packet) with headroom for the outer headers.
pub fn probe_packet_in_place(
    tunnel: &Tunnel,
    pkt: &mut Packet,
    sequence: u32,
    timestamp_ns: u64,
    key: Option<&SipKey>,
) {
    debug_assert!(pkt.is_empty(), "probes carry no inner packet");
    build_in_place(
        tunnel,
        pkt,
        None,
        sequence,
        timestamp_ns,
        TangoFlags::probe(),
        key,
    );
}

/// [`report_packet`] in place: the packet's bytes are the encoded
/// measurement report.
pub fn report_packet_in_place(
    tunnel: &Tunnel,
    pkt: &mut Packet,
    sequence: u32,
    timestamp_ns: u64,
    key: Option<&SipKey>,
) {
    build_in_place(
        tunnel,
        pkt,
        Some(INNER_PROTO_REPORT),
        sequence,
        timestamp_ns,
        TangoFlags::report(),
        key,
    );
}

// tango-lint: allow(hot-path-panic) headroom is checked on entry; emits write into exactly-sized sub-slices of it
fn build_in_place(
    tunnel: &Tunnel,
    pkt: &mut Packet,
    inner_proto_override: Option<u16>,
    sequence: u32,
    timestamp_ns: u64,
    flags: TangoFlags,
    key: Option<&SipKey>,
) {
    if pkt.headroom() < ENCAP_OVERHEAD {
        // Copying fallback for callers without reserved headroom.
        *pkt = Packet::new(build(
            tunnel,
            pkt.bytes(),
            inner_proto_override,
            sequence,
            timestamp_ns,
            flags,
            key,
        ));
        return;
    }
    let flags = if key.is_some() {
        flags.with_auth()
    } else {
        flags
    };
    let inner_len = pkt.len();
    let tango = TangoRepr {
        flags,
        path_id: tunnel.id,
        inner_proto: inner_proto_override.unwrap_or_else(|| inner_proto_of(pkt.bytes())),
        sequence,
        timestamp_ns,
    };
    let tag_len = if key.is_some() { TANGO_AUTH_TAG_LEN } else { 0 };
    // Prepend the outer headers, emit the Tango header, and compute the
    // tag over header + inner while the bytes are contiguous.
    let tag = {
        let bytes = pkt.prepend(ENCAP_OVERHEAD);
        let mut tango_pkt =
            TangoPacket::new_unchecked(&mut bytes[TANGO_OFF..TANGO_OFF + TANGO_HEADER_LEN]);
        tango.emit(&mut tango_pkt).expect("sized buffer");
        key.map(|k| {
            siphash24(
                k,
                &bytes[TANGO_OFF..TANGO_OFF + TANGO_HEADER_LEN + inner_len],
            )
        })
    };
    if let Some(tag) = tag {
        pkt.append(&tag.to_be_bytes());
    }
    let udp = UdpRepr {
        src_port: tunnel.src_port,
        dst_port: TANGO_UDP_PORT,
        payload_len: TANGO_HEADER_LEN + inner_len + tag_len,
    };
    let ip = Ipv6Repr {
        src_addr: tunnel.local_endpoint,
        dst_addr: tunnel.remote_endpoint,
        next_header: 17,
        payload_len: udp.total_len(),
        hop_limit: 64,
        traffic_class: 0,
        flow_label: u32::from(tunnel.id) + 1,
    };
    let bytes = pkt.bytes_mut();
    let mut ip_pkt = Ipv6Packet::new_unchecked(bytes);
    ip.emit(&mut ip_pkt).expect("sized buffer");
    let mut udp_pkt = UdpPacket::new_unchecked(ip_pkt.payload_mut());
    udp.emit(&mut udp_pkt).expect("sized buffer");
    udp_pkt.fill_checksum_v6(tunnel.local_endpoint, tunnel.remote_endpoint);
}

/// What [`decapsulate`] returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decapsulated {
    /// The parsed Tango header.
    pub tango: TangoRepr,
    /// The inner packet (empty for probes).
    pub inner: Vec<u8>,
    /// The outer source address (which remote tunnel endpoint sent it).
    pub outer_src: std::net::Ipv6Addr,
    /// The outer destination (which of our tunnel endpoints it hit).
    pub outer_dst: std::net::Ipv6Addr,
}

/// Receiver-side program: validate and strip the encapsulation.
///
/// Validation order is security-relevant: checksum *before* trusting the
/// timestamp, authentication *before* semantics, magic/version before
/// attributing to a path. A packet that fails any check yields an error
/// and must be counted, not measured.
///
/// Equivalent to [`decapsulate_with`]`(bytes, None, false)` — no
/// authentication is enforced (tags on AUTH-flagged packets are stripped
/// unverified).
pub fn decapsulate(bytes: &[u8]) -> Result<Decapsulated, CodecError> {
    decapsulate_with(bytes, None, false)
}

/// [`decapsulate`] with §6 authenticated-telemetry enforcement.
///
/// * `key = Some(..)`: AUTH-flagged packets have their SipHash-2-4
///   trailer verified; forged or truncated tags yield
///   [`CodecError::Auth`].
/// * `require_auth = true`: packets *without* the AUTH flag are also
///   rejected — an on-path attacker cannot bypass verification by
///   clearing the flag.
pub fn decapsulate_with(
    bytes: &[u8],
    key: Option<&SipKey>,
    require_auth: bool,
) -> Result<Decapsulated, CodecError> {
    let (tango, outer_src, outer_dst, inner) = parse_outer(bytes, key, require_auth)?;
    // tango-lint: allow(hot-path-panic) parse_outer validated the range against bytes.len()
    Ok(Decapsulated {
        tango,
        inner: bytes[inner].to_vec(),
        outer_src,
        outer_dst,
    })
}

/// What [`decapsulate_in_place`] returns: everything [`Decapsulated`]
/// carries except the inner bytes, which stay in the packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecapInfo {
    /// The parsed Tango header.
    pub tango: TangoRepr,
    /// The outer source address (which remote tunnel endpoint sent it).
    pub outer_src: std::net::Ipv6Addr,
    /// The outer destination (which of our tunnel endpoints it hit).
    pub outer_dst: std::net::Ipv6Addr,
}

/// [`decapsulate_with`] without the inner-packet copy: on success the
/// encapsulation (and any auth trailer) is stripped *in place* and `pkt`
/// becomes the inner packet — the stripped outer headers become headroom
/// for a later re-encapsulation. On error the packet is untouched.
///
/// Validation (checksum, auth, inner-proto consistency) is identical to
/// the copying API.
pub fn decapsulate_in_place(
    pkt: &mut Packet,
    key: Option<&SipKey>,
    require_auth: bool,
) -> Result<DecapInfo, CodecError> {
    let (tango, outer_src, outer_dst, inner) = parse_outer(pkt.bytes(), key, require_auth)?;
    pkt.truncate(inner.end);
    pkt.strip_front(inner.start);
    Ok(DecapInfo {
        tango,
        outer_src,
        outer_dst,
    })
}

/// The shared validation path: parse and verify the outer headers, the
/// Tango header, and (when flagged) the auth trailer; return the parsed
/// header, outer addresses, and the byte range of the inner packet
/// within `bytes`.
fn parse_outer(
    bytes: &[u8],
    key: Option<&SipKey>,
    require_auth: bool,
) -> Result<
    (
        TangoRepr,
        std::net::Ipv6Addr,
        std::net::Ipv6Addr,
        core::ops::Range<usize>,
    ),
    CodecError,
> {
    let ip = Ipv6Packet::new_checked(bytes).map_err(|_| CodecError::OuterIp)?;
    if ip.next_header() != 17 {
        return Err(CodecError::NotTangoUdp);
    }
    let src = ip.src_addr();
    let dst = ip.dst_addr();
    let udp = UdpPacket::new_checked(ip.payload()).map_err(|_| CodecError::NotTangoUdp)?;
    if udp.dst_port() != TANGO_UDP_PORT {
        return Err(CodecError::NotTangoUdp);
    }
    if !udp.verify_checksum_v6(src, dst) {
        return Err(CodecError::Checksum);
    }
    let tango_pkt = TangoPacket::new_checked(udp.payload()).map_err(|_| CodecError::TangoHeader)?;
    let tango = TangoRepr::parse(&tango_pkt).map_err(|_| CodecError::TangoHeader)?;
    if require_auth && !tango.flags.has_auth() {
        return Err(CodecError::Auth);
    }
    let payload = udp.payload();
    let inner_end = if tango.flags.has_auth() {
        if payload.len() < TANGO_HEADER_LEN + TANGO_AUTH_TAG_LEN {
            return Err(CodecError::Auth);
        }
        // Both slice bounds are safe: the length check above guarantees
        // payload.len() >= TANGO_HEADER_LEN + TANGO_AUTH_TAG_LEN.
        // tango-lint: allow(hot-path-panic) guarded by the payload.len() check above
        let covered = &payload[..payload.len() - TANGO_AUTH_TAG_LEN];
        if let Some(key) = key {
            // tango-lint: allow(hot-path-panic) guarded by the payload.len() check above
            let tag_bytes: [u8; TANGO_AUTH_TAG_LEN] = payload[payload.len() - TANGO_AUTH_TAG_LEN..]
                .try_into()
                .map_err(|_| CodecError::Auth)?;
            if !tags_equal(siphash24(key, covered), u64::from_be_bytes(tag_bytes)) {
                return Err(CodecError::Auth);
            }
        }
        covered.len()
    } else {
        payload.len()
    };
    // tango-lint: allow(hot-path-panic) TangoPacket::new_checked proved TANGO_HEADER_LEN bytes; inner_end <= payload.len()
    let inner = &payload[TANGO_HEADER_LEN..inner_end];
    match tango.inner_proto {
        0 => {
            if !inner.is_empty() {
                return Err(CodecError::Inner);
            }
        }
        4 => {
            if inner.first().map(|b| b >> 4) != Some(4) {
                return Err(CodecError::Inner);
            }
        }
        41 => {
            if inner.first().map(|b| b >> 4) != Some(6) {
                return Err(CodecError::Inner);
            }
        }
        INNER_PROTO_REPORT => {
            if inner.is_empty() {
                return Err(CodecError::Inner);
            }
        }
        _ => return Err(CodecError::Inner),
    }
    // No IPv6 extension headers on the outer header, so the UDP payload
    // sits at the fixed wire offset TANGO_OFF and udp-payload-relative
    // bounds translate by that constant.
    Ok((
        tango,
        src,
        dst,
        TANGO_OFF + TANGO_HEADER_LEN..TANGO_OFF + inner_end,
    ))
}

/// Is this packet addressed to a Tango tunnel endpoint (fast classifier —
/// the first check a switch applies to network-side arrivals)?
pub fn looks_like_tango(bytes: &[u8]) -> bool {
    let Ok(ip) = Ipv6Packet::new_checked(bytes) else {
        return false;
    };
    if ip.next_header() != 17 {
        return false;
    }
    match UdpPacket::new_checked(ip.payload()) {
        Ok(udp) => udp.dst_port() == TANGO_UDP_PORT,
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_net::Ipv6Cidr;

    fn tunnel() -> Tunnel {
        Tunnel::from_prefixes(
            3,
            "GTT",
            "2001:db8:103::/48".parse::<Ipv6Cidr>().unwrap(),
            "2001:db8:203::/48".parse::<Ipv6Cidr>().unwrap(),
        )
    }

    fn inner_v6() -> Vec<u8> {
        let ip = Ipv6Repr {
            src_addr: "2001:db8:a::1".parse().unwrap(),
            dst_addr: "2001:db8:b::1".parse().unwrap(),
            next_header: 17,
            payload_len: 3,
            hop_limit: 64,
            traffic_class: 0,
            flow_label: 0,
        };
        let mut buf = vec![0u8; ip.total_len()];
        let mut p = Ipv6Packet::new_unchecked(&mut buf[..]);
        ip.emit(&mut p).unwrap();
        p.payload_mut().copy_from_slice(b"app");
        buf
    }

    #[test]
    fn encap_decap_roundtrip() {
        let t = tunnel();
        let inner = inner_v6();
        let wire = encapsulate(&t, &inner, 42, 1_234_567);
        let d = decapsulate(&wire).unwrap();
        assert_eq!(d.tango.path_id, 3);
        assert_eq!(d.tango.sequence, 42);
        assert_eq!(d.tango.timestamp_ns, 1_234_567);
        assert_eq!(d.tango.inner_proto, 41);
        assert!(!d.tango.flags.is_probe());
        assert_eq!(d.inner, inner);
        assert_eq!(d.outer_src, t.local_endpoint);
        assert_eq!(d.outer_dst, t.remote_endpoint);
    }

    #[test]
    fn probe_roundtrip() {
        let t = tunnel();
        let wire = probe_packet(&t, 7, 99);
        let d = decapsulate(&wire).unwrap();
        assert!(d.tango.flags.is_probe());
        assert_eq!(d.tango.inner_proto, 0);
        assert!(d.inner.is_empty());
    }

    #[test]
    fn every_single_byte_corruption_is_caught_or_harmless() {
        // Flip each byte of the wire packet: decapsulation must never
        // yield a *different* accepted measurement. Flips in fields the
        // UDP checksum does not cover (outer traffic class, flow label,
        // hop limit) are accepted but measurement-identical; everything
        // that could distort a sample (addresses, ports, Tango header,
        // inner bytes) must be rejected.
        let t = tunnel();
        let inner = inner_v6();
        let wire = encapsulate(&t, &inner, 42, 1_234_567);
        let reference = decapsulate(&wire).unwrap();
        for i in 0..wire.len() {
            let mut corrupt = wire.clone();
            corrupt[i] ^= 0x01;
            match decapsulate(&corrupt) {
                Err(_) => {}
                Ok(d) => {
                    assert_eq!(
                        d, reference,
                        "byte {i}: accepted corruption altered the measurement"
                    );
                    // Only checksum-uncovered outer-header bytes may pass.
                    assert!(
                        i < 8,
                        "byte {i} is checksum-covered yet corruption was accepted"
                    );
                }
            }
        }
        assert_eq!(decapsulate(&wire).unwrap(), reference);
    }

    #[test]
    fn rejects_non_tango_udp() {
        let t = tunnel();
        let mut wire = encapsulate(&t, &[], 1, 1);
        // Rewrite the UDP dst port and fix the checksum so only the port
        // check can reject it.
        {
            let (src, dst) = {
                let p = Ipv6Packet::new_checked(&wire[..]).unwrap();
                (p.src_addr(), p.dst_addr())
            };
            let mut ip = Ipv6Packet::new_unchecked(&mut wire[..]);
            let mut udp = UdpPacket::new_unchecked(ip.payload_mut());
            udp.set_dst_port(5353);
            udp.fill_checksum_v6(src, dst);
        }
        assert_eq!(decapsulate(&wire), Err(CodecError::NotTangoUdp));
        assert!(!looks_like_tango(&wire));
    }

    #[test]
    fn rejects_truncated_everything() {
        let t = tunnel();
        let wire = encapsulate(&t, &inner_v6(), 1, 1);
        for cut in 0..wire.len() {
            assert!(decapsulate(&wire[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn rejects_inner_proto_mismatch() {
        let t = tunnel();
        // Claim IPv4 inner but carry IPv6 bytes: build manually.
        let inner = inner_v6();
        let mut wire = encapsulate(&t, &inner, 1, 1);
        // Tango header starts at 40 (IPv6) + 8 (UDP); inner_proto at +6.
        wire[40 + 8 + 6] = 0;
        wire[40 + 8 + 7] = 4;
        // Fix the UDP checksum for the modified byte.
        let (src, dst) = (t.local_endpoint, t.remote_endpoint);
        let mut ip = Ipv6Packet::new_unchecked(&mut wire[..]);
        let mut udp = UdpPacket::new_unchecked(ip.payload_mut());
        udp.fill_checksum_v6(src, dst);
        assert_eq!(decapsulate(&wire), Err(CodecError::Inner));
    }

    #[test]
    fn classifier_matches_tango_only() {
        let t = tunnel();
        assert!(looks_like_tango(&encapsulate(&t, &inner_v6(), 1, 1)));
        assert!(looks_like_tango(&probe_packet(&t, 1, 1)));
        assert!(!looks_like_tango(&inner_v6())); // plain UDP, wrong port? no UDP at all
        assert!(!looks_like_tango(&[0x45, 0, 0, 0]));
        assert!(!looks_like_tango(&[]));
    }

    #[test]
    fn ipv4_inner_proto_code() {
        let t = tunnel();
        // Minimal valid IPv4 inner packet.
        let v4 = {
            let repr = tango_net::Ipv4Repr {
                src_addr: "10.0.0.1".parse().unwrap(),
                dst_addr: "10.0.0.2".parse().unwrap(),
                protocol: 17,
                payload_len: 0,
                ttl: 64,
                dscp_ecn: 0,
            };
            let mut buf = vec![0u8; repr.total_len()];
            let mut p = tango_net::Ipv4Packet::new_unchecked(&mut buf[..]);
            repr.emit(&mut p).unwrap();
            buf
        };
        let wire = encapsulate(&t, &v4, 9, 9);
        let d = decapsulate(&wire).unwrap();
        assert_eq!(d.tango.inner_proto, 4);
        assert_eq!(d.inner, v4);
    }

    #[test]
    fn auth_roundtrip_and_forgery_rejection() {
        let t = tunnel();
        let key = SipKey::from_words(0x1111, 0x2222);
        let inner = inner_v6();
        let wire = encapsulate_auth(&t, &inner, 9, 777, &key);
        // Verifying receiver accepts and recovers the inner packet.
        let d = decapsulate_with(&wire, Some(&key), true).unwrap();
        assert!(d.tango.flags.has_auth());
        assert_eq!(d.inner, inner);
        // Wrong key: rejected.
        let bad = SipKey::from_words(0x1111, 0x2223);
        assert_eq!(
            decapsulate_with(&wire, Some(&bad), true),
            Err(CodecError::Auth)
        );
        // Non-verifying receiver still strips the tag correctly.
        let d = decapsulate(&wire).unwrap();
        assert_eq!(d.inner, inner);
    }

    #[test]
    fn require_auth_rejects_unauthenticated_packets() {
        let t = tunnel();
        let key = SipKey::from_words(1, 2);
        let plain = encapsulate(&t, &inner_v6(), 1, 1);
        assert_eq!(
            decapsulate_with(&plain, Some(&key), true),
            Err(CodecError::Auth)
        );
        // ...but is fine when auth is optional.
        assert!(decapsulate_with(&plain, Some(&key), false).is_ok());
    }

    #[test]
    fn auth_catches_checksum_fixed_tampering() {
        // The attack the plain checksum cannot stop (§6): rewrite the
        // timestamp to fake a lower delay AND fix the UDP checksum.
        let t = tunnel();
        let key = SipKey::from_words(7, 8);
        let mut wire = probe_packet_auth(&t, 5, 1_000_000, &key);
        wire[40 + 8 + 12..40 + 8 + 20].copy_from_slice(&42u64.to_be_bytes());
        let (src, dst) = (t.local_endpoint, t.remote_endpoint);
        let mut ip = Ipv6Packet::new_unchecked(&mut wire[..]);
        let mut udp = UdpPacket::new_unchecked(ip.payload_mut());
        udp.fill_checksum_v6(src, dst);
        // Checksum now verifies — but the SipHash tag does not.
        assert_eq!(
            decapsulate_with(&wire, Some(&key), true),
            Err(CodecError::Auth)
        );
    }

    #[test]
    fn auth_flag_stripping_attack_fails() {
        // An attacker clears the AUTH flag (and fixes the checksum) to
        // bypass verification: require_auth rejects the packet.
        let t = tunnel();
        let key = SipKey::from_words(3, 4);
        let mut wire = probe_packet_auth(&t, 5, 1_000_000, &key);
        wire[40 + 8 + 3] &= !TangoFlags::AUTH;
        let (src, dst) = (t.local_endpoint, t.remote_endpoint);
        let mut ip = Ipv6Packet::new_unchecked(&mut wire[..]);
        let mut udp = UdpPacket::new_unchecked(ip.payload_mut());
        udp.fill_checksum_v6(src, dst);
        assert_eq!(
            decapsulate_with(&wire, Some(&key), true),
            Err(CodecError::Auth)
        );
    }

    #[test]
    fn truncated_auth_tag_rejected() {
        let t = tunnel();
        let key = SipKey::from_words(5, 6);
        let wire = probe_packet_auth(&t, 1, 1, &key);
        // Reconstruct a packet whose UDP payload is only the header (tag
        // missing) but whose AUTH flag is set.
        let plain = probe_packet(&t, 1, 1);
        let mut forged = plain.clone();
        forged[40 + 8 + 3] |= TangoFlags::AUTH;
        let (src, dst) = (t.local_endpoint, t.remote_endpoint);
        let mut ip = Ipv6Packet::new_unchecked(&mut forged[..]);
        let mut udp = UdpPacket::new_unchecked(ip.payload_mut());
        udp.fill_checksum_v6(src, dst);
        assert_eq!(
            decapsulate_with(&forged, Some(&key), true),
            Err(CodecError::Auth)
        );
        let _ = wire;
    }

    #[test]
    fn report_packet_roundtrip() {
        let t = tunnel();
        let payload = vec![1u8, 2, 3, 4, 5];
        let wire = report_packet(&t, 3, 99, &payload, None);
        let d = decapsulate(&wire).unwrap();
        assert!(d.tango.flags.is_report());
        assert_eq!(d.tango.inner_proto, INNER_PROTO_REPORT);
        assert_eq!(d.inner, payload);
        // Authenticated report too.
        let key = SipKey::from_words(9, 9);
        let wire = report_packet(&t, 4, 100, &payload, Some(&key));
        let d = decapsulate_with(&wire, Some(&key), true).unwrap();
        assert_eq!(d.inner, payload);
    }

    #[test]
    fn fixed_five_tuple_across_packets() {
        // The ECMP-pinning property: any two packets on the same tunnel
        // present identical outer 5-tuples.
        let t = tunnel();
        let w1 = encapsulate(&t, &inner_v6(), 1, 100);
        let w2 = probe_packet(&t, 2, 200);
        let five_tuple = |w: &[u8]| {
            let ip = Ipv6Packet::new_checked(w).unwrap();
            let udp = UdpPacket::new_checked(ip.payload()).unwrap();
            (
                ip.src_addr(),
                ip.dst_addr(),
                ip.next_header(),
                udp.src_port(),
                udp.dst_port(),
            )
        };
        assert_eq!(five_tuple(&w1), five_tuple(&w2));
    }
}
