//! The control/data interface: path-selection policies and the selection
//! state they install.
//!
//! §3: Tango's third component is *"a local configuration containing the
//! available routes to the other Tango switch and logic for how a
//! forwarding decision should be made based on path performance."* The
//! logic is a [`PathPolicy`] (implemented by `tango-control`); the
//! decision it installs is a [`Selection`], evaluated per packet in the
//! switch with zero allocation.

use std::collections::BTreeMap;

/// A point-in-time view of one path's health, extracted from the peer's
/// receive-side stats at each control tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSnapshot {
    /// Smoothed one-way delay, ns (None until the first sample).
    pub owd_ewma_ns: Option<f64>,
    /// Most recent raw one-way delay sample, ns.
    pub last_owd_ns: Option<f64>,
    /// Rolling 1-second-window standard deviation, ns (the jitter metric).
    pub jitter_ns: Option<f64>,
    /// Estimated loss rate in [0, 1].
    pub loss_rate: f64,
    /// Total samples observed.
    pub samples: u64,
    /// How much longer ago this path last delivered a packet than the
    /// *freshest* path did, in ns (0 = this is the freshest path;
    /// `None` = never delivered). Measured entirely in the receiver's
    /// clock, so constant clock offsets cancel — a totally dead path
    /// (outage) shows unbounded staleness even though its sequence-gap
    /// loss estimator sees no arrivals to count.
    pub staleness_ns: Option<u64>,
    /// How long this path has gone without delivering *any* accepted
    /// packet, measured in the controller's own clock (the switch tracks
    /// when each path's sample count last advanced — no cross-clock
    /// subtraction). Unlike `staleness_ns` this is absolute, not relative
    /// to the freshest path, so it keeps growing even when *every* path
    /// is dark. `None` = the path has never been observed at all.
    pub silence_ns: Option<u64>,
}

/// The forwarding decision installed in the data plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// All Tango-destined traffic rides one tunnel.
    Single(u16),
    /// Weighted round-robin split across tunnels (weight, path id).
    /// Smooth WRR: deterministic, allocation-free per packet.
    Weighted(Vec<(u16, u32)>),
}

impl Selection {
    /// The set of path ids this selection can emit.
    pub fn paths(&self) -> Vec<u16> {
        match self {
            Selection::Single(p) => vec![*p],
            Selection::Weighted(w) => w.iter().map(|(p, _)| *p).collect(),
        }
    }
}

/// Per-packet evaluator for a [`Selection`] (keeps WRR state).
#[derive(Debug, Clone)]
pub struct SelectionState {
    selection: Selection,
    /// Smooth-WRR current weights.
    current: Vec<i64>,
}

impl SelectionState {
    /// Wrap a selection.
    pub fn new(selection: Selection) -> Self {
        let n = match &selection {
            Selection::Single(_) => 0,
            Selection::Weighted(w) => w.len(),
        };
        SelectionState {
            selection,
            current: vec![0; n],
        }
    }

    /// Replace the selection (from a control tick). WRR state resets.
    pub fn install(&mut self, selection: Selection) {
        if selection != self.selection {
            *self = SelectionState::new(selection);
        }
    }

    /// The installed selection.
    pub fn selection(&self) -> &Selection {
        &self.selection
    }

    /// Choose the tunnel for the next packet.
    pub fn choose(&mut self) -> Option<u16> {
        match &self.selection {
            Selection::Single(p) => Some(*p),
            Selection::Weighted(w) => {
                if w.is_empty() {
                    return None;
                }
                // Smooth weighted round-robin (nginx algorithm).
                let total: i64 = w.iter().map(|(_, wt)| i64::from(*wt)).sum();
                if total == 0 {
                    return w.first().map(|&(path, _)| path);
                }
                let mut best = 0usize;
                let mut best_current = i64::MIN;
                for (i, ((_, wt), cur)) in w.iter().zip(self.current.iter_mut()).enumerate() {
                    *cur += i64::from(*wt);
                    if *cur > best_current {
                        best_current = *cur;
                        best = i;
                    }
                }
                if let Some(cur) = self.current.get_mut(best) {
                    *cur -= total;
                }
                w.get(best).map(|&(path, _)| path)
            }
        }
    }
}

/// The policy interface: called at each control tick with fresh
/// snapshots; returns the selection to install.
pub trait PathPolicy: Send {
    /// Decide the selection given current per-path health.
    fn decide(&mut self, now_local_ns: u64, paths: &BTreeMap<u16, PathSnapshot>) -> Selection;

    /// Short policy name for experiment output.
    fn name(&self) -> &str;

    /// Should the switch emit a probe on `path` right now? The default
    /// always probes (the paper's fixed 10 ms stream). Health-gating
    /// policies override this to rate-limit probes into paths believed
    /// down (exponential-backoff re-probing): the probe *timer* keeps
    /// firing, but the packet is withheld until the backoff expires.
    fn allow_probe(&mut self, _now_local_ns: u64, _path: u16) -> bool {
        true
    }
}

/// The trivial policy: a fixed selection, never re-decided. With the
/// BGP-default path this *is* the status-quo baseline of §2.
#[derive(Debug, Clone)]
pub struct StaticPolicy {
    selection: Selection,
    name: String,
}

impl StaticPolicy {
    /// Always use one path.
    pub fn single(path: u16, name: impl Into<String>) -> Self {
        StaticPolicy {
            selection: Selection::Single(path),
            name: name.into(),
        }
    }

    /// A fixed weighted split.
    pub fn weighted(weights: Vec<(u16, u32)>, name: impl Into<String>) -> Self {
        StaticPolicy {
            selection: Selection::Weighted(weights),
            name: name.into(),
        }
    }
}

impl PathPolicy for StaticPolicy {
    fn decide(&mut self, _now: u64, _paths: &BTreeMap<u16, PathSnapshot>) -> Selection {
        self.selection.clone()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_always_same() {
        let mut s = SelectionState::new(Selection::Single(3));
        for _ in 0..10 {
            assert_eq!(s.choose(), Some(3));
        }
    }

    #[test]
    fn wrr_respects_weights_exactly() {
        let mut s = SelectionState::new(Selection::Weighted(vec![(0, 3), (1, 1)]));
        let mut counts = [0u32; 2];
        for _ in 0..400 {
            counts[s.choose().unwrap() as usize] += 1;
        }
        assert_eq!(counts, [300, 100]);
    }

    #[test]
    fn wrr_is_smooth_not_bursty() {
        // Smooth WRR with weights 2:1 interleaves (no AAB...AAB runs of
        // the same path longer than its share requires).
        let mut s = SelectionState::new(Selection::Weighted(vec![(0, 2), (1, 1)]));
        let seq: Vec<u16> = (0..9).map(|_| s.choose().unwrap()).collect();
        // nginx smooth WRR for 2:1 yields 0,1,0 repeating.
        assert_eq!(seq, vec![0, 1, 0, 0, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn wrr_zero_weights_degrade_gracefully() {
        let mut s = SelectionState::new(Selection::Weighted(vec![(5, 0), (6, 0)]));
        assert_eq!(s.choose(), Some(5));
        let mut empty = SelectionState::new(Selection::Weighted(vec![]));
        assert_eq!(empty.choose(), None);
    }

    #[test]
    fn install_resets_only_on_change() {
        let mut s = SelectionState::new(Selection::Weighted(vec![(0, 2), (1, 1)]));
        s.choose();
        let drained = s.current.clone();
        s.install(Selection::Weighted(vec![(0, 2), (1, 1)])); // identical
        assert_eq!(s.current, drained, "same selection must not reset WRR");
        s.install(Selection::Single(1));
        assert_eq!(s.choose(), Some(1));
    }

    #[test]
    fn static_policy_ignores_stats() {
        let mut p = StaticPolicy::single(0, "bgp-default");
        let empty = BTreeMap::new();
        assert_eq!(p.decide(0, &empty), Selection::Single(0));
        assert_eq!(p.name(), "bgp-default");
    }

    #[test]
    fn selection_paths() {
        assert_eq!(Selection::Single(4).paths(), vec![4]);
        assert_eq!(
            Selection::Weighted(vec![(1, 1), (2, 9)]).paths(),
            vec![1, 2]
        );
    }
}
