//! The in-band cooperation feedback message.
//!
//! Tango's routing decision at edge A is driven by edge B's receive-side
//! measurements of the A→B paths (§3: the cooperating networks share
//! what they see). This module is the wire format of that sharing: a
//! compact per-path digest the receiving switch periodically sends back
//! inside a Tango tunnel packet flagged `REPORT`. With this channel, the
//! cooperative feedback pays real network latency instead of the
//! zero-delay shared-memory idealization (both modes are supported; see
//! `switch::FeedbackMode`).
//!
//! Wire layout (big-endian):
//!
//! ```text
//! version: u8 | count: u8 | count × {
//!   path_id: u16 | samples: u64 | owd_ewma_ns: i64 |
//!   jitter_ns: u64 | loss_ppm: u32 | staleness_ns: u64
//! }
//! ```

use crate::policy::PathSnapshot;
use std::collections::BTreeMap;

/// Report wire-format version.
pub const REPORT_VERSION: u8 = 1;
/// Bytes per record.
const RECORD_LEN: usize = 2 + 8 + 8 + 8 + 4 + 8;
/// Sentinel for "never delivered" staleness.
const STALENESS_NONE: u64 = u64::MAX;

/// One path's digest inside a report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathRecord {
    /// Which path (tunnel id).
    pub path_id: u16,
    /// Samples observed so far.
    pub samples: u64,
    /// Smoothed one-way delay, ns (receiver-clock-relative; meaningful
    /// for relative comparisons, like everything else in Tango).
    pub owd_ewma_ns: i64,
    /// Rolling 1-second std-dev, ns.
    pub jitter_ns: u64,
    /// Loss rate in parts per million.
    pub loss_ppm: u32,
    /// Staleness relative to the freshest path, ns (`u64::MAX` = never
    /// delivered).
    pub staleness_ns: u64,
}

impl PathRecord {
    /// Convert to the policy-facing snapshot.
    pub fn to_snapshot(self) -> PathSnapshot {
        PathSnapshot {
            owd_ewma_ns: if self.samples > 0 {
                Some(self.owd_ewma_ns as f64)
            } else {
                None
            },
            last_owd_ns: None, // not carried: the EWMA is the feedback signal
            jitter_ns: if self.samples > 0 {
                Some(self.jitter_ns as f64)
            } else {
                None
            },
            loss_rate: f64::from(self.loss_ppm) / 1e6,
            samples: self.samples,
            staleness_ns: if self.staleness_ns == STALENESS_NONE {
                None
            } else {
                Some(self.staleness_ns)
            },
            // Not carried on the wire: the receiving switch overlays its
            // own locally-clocked progress tracking (see `snapshots`).
            silence_ns: None,
        }
    }
}

/// A full measurement report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MeasurementReport {
    /// Per-path digests (at most 255 per report).
    pub records: Vec<PathRecord>,
}

/// Report decode errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportError {
    /// Buffer too short for the declared record count.
    Truncated,
    /// Unknown version byte.
    Version,
}

impl core::fmt::Display for ReportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReportError::Truncated => write!(f, "truncated report"),
            ReportError::Version => write!(f, "unknown report version"),
        }
    }
}

impl std::error::Error for ReportError {}

impl MeasurementReport {
    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let n = self.records.len().min(255);
        let mut out = Vec::with_capacity(2 + n * RECORD_LEN);
        out.push(REPORT_VERSION);
        out.push(n as u8);
        for r in self.records.iter().take(n) {
            out.extend_from_slice(&r.path_id.to_be_bytes());
            out.extend_from_slice(&r.samples.to_be_bytes());
            out.extend_from_slice(&r.owd_ewma_ns.to_be_bytes());
            out.extend_from_slice(&r.jitter_ns.to_be_bytes());
            out.extend_from_slice(&r.loss_ppm.to_be_bytes());
            out.extend_from_slice(&r.staleness_ns.to_be_bytes());
        }
        out
    }

    /// Decode from bytes. Every read is bounds-checked, so a truncated
    /// or corrupted report yields `Err`, never a panic.
    pub fn decode(data: &[u8]) -> Result<Self, ReportError> {
        fn take<'a, const N: usize>(data: &mut &'a [u8]) -> Result<&'a [u8; N], ReportError> {
            if data.len() < N {
                return Err(ReportError::Truncated);
            }
            let (head, rest) = data.split_at(N);
            *data = rest;
            // Infallible after the length check above.
            head.try_into().map_err(|_| ReportError::Truncated)
        }
        let mut cursor = data;
        let [version, count] = *take(&mut cursor)?;
        if version != REPORT_VERSION {
            return Err(ReportError::Version);
        }
        let n = usize::from(count);
        if data.len() < 2 + n * RECORD_LEN {
            return Err(ReportError::Truncated);
        }
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            records.push(PathRecord {
                path_id: u16::from_be_bytes(*take(&mut cursor)?),
                samples: u64::from_be_bytes(*take(&mut cursor)?),
                owd_ewma_ns: i64::from_be_bytes(*take(&mut cursor)?),
                jitter_ns: u64::from_be_bytes(*take(&mut cursor)?),
                loss_ppm: u32::from_be_bytes(*take(&mut cursor)?),
                staleness_ns: u64::from_be_bytes(*take(&mut cursor)?),
            });
        }
        Ok(MeasurementReport { records })
    }

    /// The snapshots a controller consumes.
    pub fn to_snapshots(&self) -> BTreeMap<u16, PathSnapshot> {
        self.records
            .iter()
            .map(|r| (r.path_id, r.to_snapshot()))
            .collect()
    }
}

/// Build a report from a stats sink (receiver side).
pub fn report_from_sink(sink: &crate::stats::StatsSink) -> MeasurementReport {
    let freshest: Option<u64> = sink
        .paths()
        .filter_map(|(_, p)| p.owd.times_ns().last().copied())
        .max();
    let records = sink
        .paths()
        .map(|(id, p)| {
            let last_rx = p.owd.times_ns().last().copied();
            let staleness_ns = match (freshest, last_rx) {
                (Some(f), Some(l)) => f.saturating_sub(l),
                _ => STALENESS_NONE,
            };
            PathRecord {
                path_id: id,
                samples: p.owd.len() as u64,
                owd_ewma_ns: p.owd_ewma.get().unwrap_or(0.0) as i64,
                jitter_ns: p.rolling.std().unwrap_or(0.0) as u64,
                loss_ppm: (p.seq.loss_rate() * 1e6) as u32,
                staleness_ns,
            }
        })
        .collect();
    MeasurementReport { records }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> MeasurementReport {
        MeasurementReport {
            records: vec![
                PathRecord {
                    path_id: 0,
                    samples: 1234,
                    owd_ewma_ns: 36_500_000,
                    jitter_ns: 60_000,
                    loss_ppm: 0,
                    staleness_ns: 0,
                },
                PathRecord {
                    path_id: 2,
                    samples: 1200,
                    owd_ewma_ns: -5_000, // negative EWMA: legal with clock offsets
                    jitter_ns: 10_000,
                    loss_ppm: 150_000,
                    staleness_ns: STALENESS_NONE,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let r = sample_report();
        assert_eq!(MeasurementReport::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn empty_roundtrip() {
        let r = MeasurementReport::default();
        let bytes = r.encode();
        assert_eq!(bytes, vec![REPORT_VERSION, 0]);
        assert_eq!(MeasurementReport::decode(&bytes).unwrap(), r);
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = sample_report().encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                MeasurementReport::decode(&bytes[..cut]),
                Err(ReportError::Truncated),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn version_checked() {
        let mut bytes = sample_report().encode();
        bytes[0] = 99;
        assert_eq!(MeasurementReport::decode(&bytes), Err(ReportError::Version));
    }

    #[test]
    fn snapshot_conversion() {
        let r = sample_report();
        let snaps = r.to_snapshots();
        let p0 = &snaps[&0];
        assert_eq!(p0.owd_ewma_ns, Some(36_500_000.0));
        assert_eq!(p0.loss_rate, 0.0);
        assert_eq!(p0.staleness_ns, Some(0));
        let p2 = &snaps[&2];
        assert_eq!(p2.owd_ewma_ns, Some(-5_000.0));
        assert!((p2.loss_rate - 0.15).abs() < 1e-9);
        assert_eq!(p2.staleness_ns, None, "sentinel maps to None");
    }

    #[test]
    fn zero_sample_record_yields_unmeasured_snapshot() {
        let rec = PathRecord {
            path_id: 7,
            samples: 0,
            owd_ewma_ns: 0,
            jitter_ns: 0,
            loss_ppm: 0,
            staleness_ns: STALENESS_NONE,
        };
        let s = rec.to_snapshot();
        assert_eq!(s.owd_ewma_ns, None);
        assert_eq!(s.jitter_ns, None);
        assert_eq!(s.samples, 0);
    }

    #[test]
    fn from_sink_builds_consistent_records() {
        let mut sink = crate::stats::StatsSink::new();
        sink.register_path(0, "NTT");
        sink.register_path(1, "GTT");
        for i in 0..50u32 {
            sink.path_mut(0)
                .record_owd(u64::from(i) * 10_000_000, 36_500_000.0, i, true);
        }
        for i in 0..40u32 {
            sink.path_mut(1)
                .record_owd(u64::from(i) * 10_000_000, 28_150_000.0, i, true);
        }
        let report = report_from_sink(&sink);
        assert_eq!(report.records.len(), 2);
        let snaps = report.to_snapshots();
        assert_eq!(snaps[&0].staleness_ns, Some(0), "freshest path");
        assert_eq!(
            snaps[&1].staleness_ns,
            Some(100_000_000),
            "10 samples behind"
        );
        assert!((snaps[&0].owd_ewma_ns.unwrap() - 36_500_000.0).abs() < 2.0);
    }
}
