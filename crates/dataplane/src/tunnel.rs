//! Tunnel descriptors.
//!
//! §3: *"Tango switches announce multiple prefixes across different
//! routes and then build tunnels with endpoints in those different
//! prefixes. These tunnels traverse the different interdomain paths
//! exposed by the different prefixes."* A [`Tunnel`] couples a path id
//! with the local and remote endpoint addresses and the fixed UDP source
//! port that pins the tunnel onto a single ECMP lane.

use std::net::Ipv6Addr;
use tango_net::Ipv6Cidr;

/// One unidirectional Tango tunnel (sender's view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tunnel {
    /// The path id carried in the Tango header (and series label index).
    pub id: u16,
    /// Display label for experiment output ("NTT", "GTT", ...).
    pub label: String,
    /// Local endpoint address — source of the outer header, drawn from a
    /// locally announced per-path prefix.
    pub local_endpoint: Ipv6Addr,
    /// Remote endpoint address — destination of the outer header, inside
    /// the peer's prefix for this path. Core routers deliver it over the
    /// path that prefix was announced on: this address *is* the route.
    pub remote_endpoint: Ipv6Addr,
    /// Fixed UDP source port. One port per tunnel: every packet of the
    /// tunnel presents the same 5-tuple to ECMP.
    pub src_port: u16,
}

impl Tunnel {
    /// Construct a tunnel taking endpoint addresses from per-path
    /// prefixes (host 1 in each — the switch's tunnel interface).
    pub fn from_prefixes(
        id: u16,
        label: impl Into<String>,
        local_prefix: Ipv6Cidr,
        remote_prefix: Ipv6Cidr,
    ) -> Self {
        Tunnel {
            id,
            label: label.into(),
            local_endpoint: local_prefix.host(1).expect("prefix narrower than /128"),
            remote_endpoint: remote_prefix.host(1).expect("prefix narrower than /128"),
            // Distinct, stable, and outside well-known ranges.
            src_port: 49_152 + id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv6Cidr {
        s.parse().unwrap()
    }

    #[test]
    fn endpoints_from_prefixes() {
        let t = Tunnel::from_prefixes(
            2,
            "GTT",
            cidr("2001:db8:102::/48"),
            cidr("2001:db8:202::/48"),
        );
        assert_eq!(
            t.local_endpoint,
            "2001:db8:102::1".parse::<Ipv6Addr>().unwrap()
        );
        assert_eq!(
            t.remote_endpoint,
            "2001:db8:202::1".parse::<Ipv6Addr>().unwrap()
        );
        assert_eq!(t.src_port, 49_154);
        assert_eq!(t.label, "GTT");
    }

    #[test]
    fn distinct_tunnels_get_distinct_ports() {
        let a = Tunnel::from_prefixes(0, "a", cidr("2001:db8:100::/48"), cidr("2001:db8:200::/48"));
        let b = Tunnel::from_prefixes(1, "b", cidr("2001:db8:101::/48"), cidr("2001:db8:201::/48"));
        assert_ne!(a.src_port, b.src_port);
        assert_ne!(a.remote_endpoint, b.remote_endpoint);
    }
}
