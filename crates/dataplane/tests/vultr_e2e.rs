//! End-to-end: the full Vultr scenario — BGP-pinned tunnel prefixes,
//! byte-exact probes through the simulator, one-way delays matching the
//! calibrated path floors, and the unsynchronized-clock invariance.

use std::collections::BTreeSet;
use std::sync::Arc;
use tango_bgp::{BgpEngine, Community};
use tango_dataplane::{stats::shared_sink, SharedStats, SwitchConfig, TangoSwitch, Tunnel};
use tango_net::{IpCidr, Ipv6Cidr};
use tango_sim::{NetworkSim, NodeClock, RouterAgent, SimConfig, SimTime};
use tango_topology::vultr::{
    vultr_scenario, COGENT, GTT, LEVEL3, NTT, TELIA, TENANT_LA, TENANT_NY, VULTR_LA, VULTR_NY,
};
use tango_topology::AsId;

fn v6(s: &str) -> Ipv6Cidr {
    s.parse().unwrap()
}

/// LA-announced per-path prefixes, in Fig. 3 preference order, with the
/// community sets that pin them (suppress everything preferred over the
/// target path).
fn la_tunnel_prefixes() -> Vec<(Ipv6Cidr, Vec<AsId>, &'static str)> {
    vec![
        (v6("2001:db8:100::/48"), vec![], "NTT"),
        (v6("2001:db8:101::/48"), vec![NTT], "Telia"),
        (v6("2001:db8:102::/48"), vec![NTT, TELIA], "GTT"),
        (v6("2001:db8:103::/48"), vec![NTT, TELIA, GTT], "Level3"),
    ]
}

fn ny_tunnel_prefixes() -> Vec<(Ipv6Cidr, Vec<AsId>, &'static str)> {
    vec![
        (v6("2001:db8:200::/48"), vec![], "NTT"),
        (v6("2001:db8:201::/48"), vec![NTT], "Telia"),
        (v6("2001:db8:202::/48"), vec![NTT, TELIA], "GTT"),
        (v6("2001:db8:203::/48"), vec![NTT, TELIA, GTT], "Cogent"),
    ]
}

const LA_HOSTS: &str = "2001:db8:1ff::/48";
const NY_HOSTS: &str = "2001:db8:2ff::/48";

struct Setup {
    sim: NetworkSim,
    la_stats: SharedStats,
    ny_stats: SharedStats,
}

/// Wire the whole thing: converge BGP, install router tables, install
/// Tango switches with one tunnel per pinned prefix, arm probe timers.
fn build(seed: u64, ny_clock_offset_ns: i64) -> Setup {
    let scenario = vultr_scenario();
    let mut bgp = BgpEngine::new(scenario.topology.clone());
    for border in [VULTR_LA, VULTR_NY] {
        bgp.set_strip_private(border, true).unwrap();
        bgp.set_honor_actions(border, true).unwrap();
        bgp.set_neighbor_pref(border, scenario.neighbor_pref[&border].clone())
            .unwrap();
    }
    for (p, suppress, _) in la_tunnel_prefixes() {
        let comms: BTreeSet<Community> =
            suppress.iter().map(|&a| Community::NoExportTo(a)).collect();
        bgp.announce(TENANT_LA, IpCidr::V6(p), comms).unwrap();
    }
    for (p, suppress, _) in ny_tunnel_prefixes() {
        let comms: BTreeSet<Community> =
            suppress.iter().map(|&a| Community::NoExportTo(a)).collect();
        bgp.announce(TENANT_NY, IpCidr::V6(p), comms).unwrap();
    }
    bgp.announce(TENANT_LA, LA_HOSTS.parse().unwrap(), BTreeSet::new())
        .unwrap();
    bgp.announce(TENANT_NY, NY_HOSTS.parse().unwrap(), BTreeSet::new())
        .unwrap();
    bgp.converge().unwrap();

    let mut sim = NetworkSim::new(
        scenario.topology.clone(),
        SimConfig {
            seed,
            ..Default::default()
        },
    );
    for transit in [NTT, TELIA, GTT, COGENT, LEVEL3, VULTR_LA, VULTR_NY] {
        let table = bgp.forwarding_table(transit).unwrap();
        sim.set_agent(transit, Box::new(RouterAgent::new(transit, table)));
    }
    sim.set_clock(TENANT_NY, NodeClock::with_offset_ns(ny_clock_offset_ns));

    let la_stats = shared_sink();
    let ny_stats = shared_sink();

    // Tunnels as seen from LA (sending toward NY prefixes)...
    let la_tunnels: Vec<Tunnel> = la_tunnel_prefixes()
        .iter()
        .zip(ny_tunnel_prefixes().iter())
        .enumerate()
        .map(|(i, ((lp, _, _), (np, _, label)))| Tunnel::from_prefixes(i as u16, *label, *lp, *np))
        .collect();
    // ...and from NY (sending toward LA prefixes).
    let ny_tunnels: Vec<Tunnel> = ny_tunnel_prefixes()
        .iter()
        .zip(la_tunnel_prefixes().iter())
        .enumerate()
        .map(|(i, ((np, _, _), (lp, _, label)))| Tunnel::from_prefixes(i as u16, *label, *np, *lp))
        .collect();

    let la_switch = TangoSwitch::with_static_path(
        SwitchConfig {
            id: TENANT_LA,
            border: VULTR_LA,
            tunnels: la_tunnels,
            remote_host_prefixes: vec![NY_HOSTS.parse().unwrap()],
            probe_period: Some(SimTime::from_ms(10)),
            control_period: None,
            initial_path: 0,
            wan_table: None,
            feedback: tango_dataplane::FeedbackMode::Shared,
            auth_key: None,
            class_map: Default::default(),
            rx_labels: Vec::new(),
            obs: None,
        },
        Arc::clone(&la_stats),
        Arc::clone(&ny_stats),
    );
    let ny_switch = TangoSwitch::with_static_path(
        SwitchConfig {
            id: TENANT_NY,
            border: VULTR_NY,
            tunnels: ny_tunnels,
            remote_host_prefixes: vec![LA_HOSTS.parse().unwrap()],
            probe_period: Some(SimTime::from_ms(10)),
            control_period: None,
            initial_path: 0,
            wan_table: None,
            feedback: tango_dataplane::FeedbackMode::Shared,
            auth_key: None,
            class_map: Default::default(),
            rx_labels: Vec::new(),
            obs: None,
        },
        Arc::clone(&ny_stats),
        Arc::clone(&la_stats),
    );
    sim.set_agent(TENANT_LA, Box::new(la_switch));
    sim.set_agent(TENANT_NY, Box::new(ny_switch));
    TangoSwitch::arm_timers(
        &mut sim,
        TENANT_LA,
        true,
        false,
        false,
        4,
        SimTime::from_ms(1),
    );
    TangoSwitch::arm_timers(
        &mut sim,
        TENANT_NY,
        true,
        false,
        false,
        4,
        SimTime::from_ms(1),
    );
    Setup {
        sim,
        la_stats,
        ny_stats,
    }
}

fn mean_owd_ms(stats: &SharedStats, path: u16) -> f64 {
    let sink = stats.lock();
    sink.path(path).unwrap().owd.mean().unwrap() / 1e6
}

#[test]
fn probes_measure_calibrated_floors_ny_to_la() {
    let Setup {
        mut sim, la_stats, ..
    } = build(11, 0);
    sim.run_until(SimTime::from_secs(30));

    // ~3000 probes per path; all four paths measured at LA.
    let sink = la_stats.lock();
    for (id, p) in sink.paths() {
        assert!(p.owd.len() > 2900, "path {id} only {} samples", p.owd.len());
        assert_eq!(p.seq.lost(), 0, "lossless calibration");
        assert_eq!(p.rejected, 0);
    }
    drop(sink);

    let ntt = mean_owd_ms(&la_stats, 0);
    let telia = mean_owd_ms(&la_stats, 1);
    let gtt = mean_owd_ms(&la_stats, 2);
    let level3 = mean_owd_ms(&la_stats, 3);
    // Floor plus whichever ECMP lane (0..=180 µs) the tunnel pinned.
    assert!((28.10..28.40).contains(&gtt), "gtt {gtt}");
    assert!(
        (ntt / gtt - 1.295).abs() < 0.03,
        "default 30% worse: {}",
        ntt / gtt
    );
    assert!(telia > gtt && telia < ntt, "telia {telia}");
    assert!(level3 > ntt, "level3 {level3}");
}

#[test]
fn probes_measure_calibrated_floors_la_to_ny() {
    let Setup {
        mut sim, ny_stats, ..
    } = build(12, 0);
    sim.run_until(SimTime::from_secs(30));
    let ntt = mean_owd_ms(&ny_stats, 0);
    let gtt = mean_owd_ms(&ny_stats, 2);
    let cogent = mean_owd_ms(&ny_stats, 3);
    assert!((27.90..28.20).contains(&gtt), "gtt {gtt}");
    assert!(ntt / gtt > 1.25 && ntt / gtt < 1.35, "ratio {}", ntt / gtt);
    assert!(cogent > ntt, "cogent {cogent}");
}

#[test]
fn clock_offset_shifts_absolute_owd_but_not_relative() {
    // The §4.2 claim, end to end: give NY a +2 s clock offset. Absolute
    // OWDs measured at NY (LA→NY direction) shift by +2 s; the *gaps*
    // between paths do not.
    let Setup {
        mut sim, ny_stats, ..
    } = build(13, 0);
    sim.run_until(SimTime::from_secs(20));
    let base_ntt = mean_owd_ms(&ny_stats, 0);
    let base_gtt = mean_owd_ms(&ny_stats, 2);

    let offset_ns = 2_000_000_000i64;
    let Setup {
        mut sim, ny_stats, ..
    } = build(13, offset_ns);
    sim.run_until(SimTime::from_secs(20));
    let off_ntt = mean_owd_ms(&ny_stats, 0);
    let off_gtt = mean_owd_ms(&ny_stats, 2);

    // Absolute values are distorted by ~2000 ms...
    assert!(
        (off_gtt - base_gtt - 2000.0).abs() < 1.0,
        "{off_gtt} vs {base_gtt}"
    );
    // ...the relative comparison is preserved to within jitter noise.
    let base_gap = base_ntt - base_gtt;
    let off_gap = off_ntt - off_gtt;
    assert!(
        (base_gap - off_gap).abs() < 0.05,
        "relative gap must survive clock offset: {base_gap} vs {off_gap}"
    );
    assert!(base_gap > 8.0, "NTT−GTT gap ≈ 8.5 ms, got {base_gap}");
}

#[test]
fn app_traffic_rides_selected_tunnel_and_is_measured() {
    use tango_net::{Ipv6Packet, Ipv6Repr};
    let Setup {
        mut sim,
        la_stats,
        ny_stats,
    } = build(14, 0);
    // Host packets from NY host → LA host prefix.
    for i in 0..100u64 {
        let repr = Ipv6Repr {
            src_addr: "2001:db8:2ff::7".parse().unwrap(),
            dst_addr: "2001:db8:1ff::9".parse().unwrap(),
            next_header: 17,
            payload_len: 8,
            hop_limit: 64,
            traffic_class: 0,
            flow_label: 0,
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Ipv6Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut p).unwrap();
        sim.schedule_host_packet(
            SimTime::from_ms(i * 5),
            TENANT_NY,
            tango_sim::Packet::new(buf),
        );
    }
    sim.run_until(SimTime::from_secs(5));
    // NY encapsulated them; LA delivered them on path 0 (static default).
    assert_eq!(ny_stats.lock().tx_encapsulated, 100);
    let sink = la_stats.lock();
    assert_eq!(sink.path(0).unwrap().app_delivered, 100);
    assert_eq!(sink.path(1).unwrap().app_delivered, 0);
}

#[test]
fn corrupted_tunnel_packets_are_rejected_not_measured() {
    use tango_sim::FaultInjector;
    // Rebuild with heavy corruption; rejected counters must grow and no
    // wildly wrong OWD samples appear. Both switches run authenticated
    // telemetry: with 30 % corruption on each of four links, a packet
    // can be hit twice, and two flips in the same 16-bit column cancel
    // in the RFC 1071 sum — the plain UDP checksum provably cannot
    // reject those, only the SipHash tag can.
    let scenario = vultr_scenario();
    let mut bgp = BgpEngine::new(scenario.topology.clone());
    for border in [VULTR_LA, VULTR_NY] {
        bgp.set_strip_private(border, true).unwrap();
        bgp.set_honor_actions(border, true).unwrap();
    }
    bgp.announce(
        TENANT_LA,
        IpCidr::V6(v6("2001:db8:100::/48")),
        BTreeSet::new(),
    )
    .unwrap();
    bgp.announce(
        TENANT_NY,
        IpCidr::V6(v6("2001:db8:200::/48")),
        BTreeSet::new(),
    )
    .unwrap();
    bgp.converge().unwrap();

    let mut sim = NetworkSim::new(
        scenario.topology.clone(),
        SimConfig {
            seed: 5,
            fault: Some(FaultInjector::new(0.0, 0.3)),
            ..Default::default()
        },
    );
    for transit in [NTT, TELIA, GTT, COGENT, LEVEL3, VULTR_LA, VULTR_NY] {
        let table = bgp.forwarding_table(transit).unwrap();
        sim.set_agent(transit, Box::new(RouterAgent::new(transit, table)));
    }
    let la_stats = shared_sink();
    let ny_stats = shared_sink();
    let tun = |id, local, remote| Tunnel::from_prefixes(id, "NTT", v6(local), v6(remote));
    let la_switch = TangoSwitch::with_static_path(
        SwitchConfig {
            id: TENANT_LA,
            border: VULTR_LA,
            tunnels: vec![tun(0, "2001:db8:100::/48", "2001:db8:200::/48")],
            remote_host_prefixes: vec![],
            probe_period: Some(SimTime::from_ms(10)),
            control_period: None,
            initial_path: 0,
            wan_table: None,
            feedback: tango_dataplane::FeedbackMode::Shared,
            auth_key: Some(tango_net::SipKey::from_words(0x7461, 0x6e67)),
            class_map: Default::default(),
            rx_labels: Vec::new(),
            obs: None,
        },
        Arc::clone(&la_stats),
        Arc::clone(&ny_stats),
    );
    sim.set_agent(TENANT_LA, Box::new(la_switch));
    let ny_switch = TangoSwitch::with_static_path(
        SwitchConfig {
            id: TENANT_NY,
            border: VULTR_NY,
            tunnels: vec![tun(0, "2001:db8:200::/48", "2001:db8:100::/48")],
            remote_host_prefixes: vec![],
            probe_period: None,
            control_period: None,
            initial_path: 0,
            wan_table: None,
            feedback: tango_dataplane::FeedbackMode::Shared,
            auth_key: Some(tango_net::SipKey::from_words(0x7461, 0x6e67)),
            class_map: Default::default(),
            rx_labels: Vec::new(),
            obs: None,
        },
        Arc::clone(&ny_stats),
        Arc::clone(&la_stats),
    );
    sim.set_agent(TENANT_NY, Box::new(ny_switch));
    TangoSwitch::arm_timers(
        &mut sim,
        TENANT_LA,
        true,
        false,
        false,
        1,
        SimTime::from_ms(1),
    );
    sim.run_until(SimTime::from_secs(20));

    let sink = ny_stats.lock();
    // Each probe crosses 4 links at 30% corrupt chance each: most probes
    // arrive corrupted. They must land in `rejected`/unattributed, and
    // every accepted measurement must still be a sane OWD.
    let rejects = sink.unattributed_rejects + sink.paths().map(|(_, p)| p.rejected).sum::<u64>();
    assert!(rejects > 500, "expected many rejects, got {rejects}");
    if let Some(p) = sink.path(0) {
        for (_, owd) in p.owd.iter() {
            assert!(
                (30_000_000.0..45_000_000.0).contains(&owd),
                "corrupt packet produced insane OWD {owd}"
            );
        }
    }
}
