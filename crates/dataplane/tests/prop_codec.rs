//! Property-based tests for the zero-copy codec paths: the in-place
//! encap/decap must be byte-for-byte interchangeable with the
//! `Vec`-returning builders on every input.

use proptest::prelude::*;
use tango_dataplane::{codec, Tunnel};
use tango_net::siphash::SipKey;
use tango_sim::Packet;

fn arb_tunnel() -> impl Strategy<Value = Tunnel> {
    (any::<u16>(), any::<u128>(), any::<u128>()).prop_map(|(id, local, remote)| Tunnel {
        id,
        label: format!("path-{id}"),
        local_endpoint: local.into(),
        remote_endpoint: remote.into(),
        src_port: 49_152_u16.wrapping_add(id),
    })
}

fn arb_inner() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..1400)
}

fn arb_key() -> impl Strategy<Value = Option<SipKey>> {
    proptest::option::of((any::<u64>(), any::<u64>()).prop_map(|(a, b)| SipKey::from_words(a, b)))
}

/// Inner payloads the receiver accepts: empty (probe), or leading with
/// an IPv4/IPv6 version nibble. (Anything else is rejected at decap as
/// inconsistent with the advertised inner protocol.)
fn arb_valid_inner() -> impl Strategy<Value = Vec<u8>> {
    (
        proptest::collection::vec(any::<u8>(), 0..1400),
        prop_oneof![Just(4u8), Just(6u8)],
    )
        .prop_map(|(mut bytes, version)| {
            if let Some(first) = bytes.first_mut() {
                *first = (version << 4) | (*first & 0x0f);
            }
            bytes
        })
}

proptest! {
    /// The headroom (zero-copy) path emits the exact wire image of the
    /// copying builders, auth or not.
    #[test]
    fn in_place_encap_matches_vec_builder(
        tunnel in arb_tunnel(),
        inner in arb_inner(),
        seq in any::<u32>(),
        ts in any::<u64>(),
        key in arb_key(),
    ) {
        let expected = match &key {
            Some(k) => codec::encapsulate_auth(&tunnel, &inner, seq, ts, k),
            None => codec::encapsulate(&tunnel, &inner, seq, ts),
        };
        let mut pkt = Packet::with_headroom(codec::ENCAP_OVERHEAD, &inner);
        codec::encapsulate_in_place(&tunnel, &mut pkt, seq, ts, key.as_ref());
        prop_assert_eq!(pkt.bytes(), &expected[..]);
        prop_assert_eq!(pkt.headroom(), 0);
    }

    /// Without headroom the copying fallback kicks in — the wire image
    /// is still identical.
    #[test]
    fn no_headroom_fallback_matches_vec_builder(
        tunnel in arb_tunnel(),
        inner in arb_inner(),
        seq in any::<u32>(),
        ts in any::<u64>(),
        key in arb_key(),
        headroom in 0usize..codec::ENCAP_OVERHEAD,
    ) {
        let expected = match &key {
            Some(k) => codec::encapsulate_auth(&tunnel, &inner, seq, ts, k),
            None => codec::encapsulate(&tunnel, &inner, seq, ts),
        };
        let mut pkt = Packet::with_headroom(headroom, &inner);
        codec::encapsulate_in_place(&tunnel, &mut pkt, seq, ts, key.as_ref());
        prop_assert_eq!(pkt.bytes(), &expected[..]);
    }

    /// In-place probe and report builders match theirs too.
    #[test]
    fn in_place_probe_and_report_match_vec_builders(
        tunnel in arb_tunnel(),
        report in proptest::collection::vec(any::<u8>(), 0..256),
        seq in any::<u32>(),
        ts in any::<u64>(),
        key in arb_key(),
    ) {
        let expected_probe = match &key {
            Some(k) => codec::probe_packet_auth(&tunnel, seq, ts, k),
            None => codec::probe_packet(&tunnel, seq, ts),
        };
        let mut probe = Packet::alloc(codec::ENCAP_OVERHEAD, 0);
        codec::probe_packet_in_place(&tunnel, &mut probe, seq, ts, key.as_ref());
        prop_assert_eq!(probe.bytes(), &expected_probe[..]);

        let expected_report = codec::report_packet(&tunnel, seq, ts, &report, key.as_ref());
        let mut rpt = Packet::with_headroom(codec::ENCAP_OVERHEAD, &report);
        codec::report_packet_in_place(&tunnel, &mut rpt, seq, ts, key.as_ref());
        prop_assert_eq!(rpt.bytes(), &expected_report[..]);
    }

    /// Round trip: in-place encap then in-place decap strips back to the
    /// original inner bytes with the header fields intact, and agrees
    /// with the allocating `decapsulate_with` on the same wire image.
    #[test]
    fn in_place_roundtrip_recovers_inner(
        tunnel in arb_tunnel(),
        inner in arb_valid_inner(),
        seq in any::<u32>(),
        ts in any::<u64>(),
        key in arb_key(),
    ) {
        let mut pkt = Packet::with_headroom(codec::ENCAP_OVERHEAD, &inner);
        codec::encapsulate_in_place(&tunnel, &mut pkt, seq, ts, key.as_ref());

        let d = codec::decapsulate_with(pkt.bytes(), key.as_ref(), key.is_some()).unwrap();
        let info = codec::decapsulate_in_place(&mut pkt, key.as_ref(), key.is_some()).unwrap();
        prop_assert_eq!(pkt.bytes(), &inner[..]);
        prop_assert_eq!(&d.inner[..], &inner[..]);
        prop_assert_eq!(info.tango.sequence, seq);
        prop_assert_eq!(info.tango.timestamp_ns, ts);
        prop_assert_eq!(info.tango.path_id, tunnel.id);
        prop_assert_eq!(info.tango, d.tango);
        prop_assert_eq!(info.outer_src, tunnel.local_endpoint);
        prop_assert_eq!(info.outer_dst, tunnel.remote_endpoint);
    }

    /// A failed decap (wrong key, mandatory auth) leaves the packet
    /// untouched so the caller can still count/trace the wire bytes.
    #[test]
    fn failed_in_place_decap_leaves_packet_intact(
        tunnel in arb_tunnel(),
        inner in arb_inner(),
        seq in any::<u32>(),
        ts in any::<u64>(),
        k1 in any::<u64>(),
        k2 in any::<u64>(),
    ) {
        let key = SipKey::from_words(k1, k2);
        let wrong = SipKey::from_words(k1 ^ 1, k2);
        let mut pkt = Packet::with_headroom(codec::ENCAP_OVERHEAD, &inner);
        codec::encapsulate_in_place(&tunnel, &mut pkt, seq, ts, Some(&key));
        let wire = pkt.bytes().to_vec();
        prop_assert!(codec::decapsulate_in_place(&mut pkt, Some(&wrong), true).is_err());
        prop_assert_eq!(pkt.bytes(), &wire[..]);
    }
}
