//! Property-based tests for the wire formats and the prefix trie.

use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use tango_net::{
    IpCidr, Ipv4Cidr, Ipv4Packet, Ipv4Repr, Ipv6Cidr, Ipv6Packet, Ipv6Repr, PrefixTrie, TangoFlags,
    TangoPacket, TangoRepr, UdpPacket, UdpRepr, TANGO_HEADER_LEN,
};

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_ipv6() -> impl Strategy<Value = Ipv6Addr> {
    any::<u128>().prop_map(Ipv6Addr::from)
}

proptest! {
    #[test]
    fn ipv4_emit_parse_roundtrip(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        protocol in 0u8..=255,
        payload_len in 0usize..1400,
        ttl in 1u8..=255,
        dscp_ecn in any::<u8>(),
    ) {
        let repr = Ipv4Repr { src_addr: src, dst_addr: dst, protocol, payload_len, ttl, dscp_ecn };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Ipv4Packet::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        prop_assert!(packet.verify_checksum());
        prop_assert_eq!(Ipv4Repr::parse(&packet).unwrap(), repr);
    }

    #[test]
    fn ipv4_corruption_never_panics(
        data in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        // Whatever bytes arrive, parsing must fail cleanly or succeed; no panic.
        if let Ok(packet) = Ipv4Packet::new_checked(&data[..]) {
            let _ = Ipv4Repr::parse(&packet);
        }
    }

    #[test]
    fn ipv4_single_byte_corruption_detected(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        payload_len in 0usize..64,
        corrupt_at in 0usize..20,
        xor in 1u8..=255,
    ) {
        let repr = Ipv4Repr { src_addr: src, dst_addr: dst, protocol: 17, payload_len, ttl: 64, dscp_ecn: 0 };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Ipv4Packet::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        buf[corrupt_at] ^= xor;
        // A corrupted *header* byte must be caught: either structural
        // validation or the checksum fails (checksum catches all single-byte
        // flips by construction of the one's-complement sum).
        let outcome = Ipv4Packet::new_checked(&buf[..]).and_then(|p| Ipv4Repr::parse(&p));
        prop_assert!(outcome.is_err() || outcome.unwrap() != repr);
    }

    #[test]
    fn ipv6_emit_parse_roundtrip(
        src in arb_ipv6(),
        dst in arb_ipv6(),
        next_header in any::<u8>(),
        payload_len in 0usize..1400,
        hop_limit in any::<u8>(),
        traffic_class in any::<u8>(),
        flow_label in 0u32..=0x000f_ffff,
    ) {
        let repr = Ipv6Repr { src_addr: src, dst_addr: dst, next_header, payload_len, hop_limit, traffic_class, flow_label };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Ipv6Packet::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        let packet = Ipv6Packet::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(Ipv6Repr::parse(&packet).unwrap(), repr);
    }

    #[test]
    fn udp_v6_checksum_roundtrip(
        src in arb_ipv6(),
        dst in arb_ipv6(),
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let repr = UdpRepr { src_port, dst_port, payload_len: payload.len() };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = UdpPacket::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        p.payload_mut().copy_from_slice(&payload);
        p.fill_checksum_v6(src, dst);
        let packet = UdpPacket::new_checked(&buf[..]).unwrap();
        prop_assert!(packet.verify_checksum_v6(src, dst));
        prop_assert_eq!(UdpRepr::parse(&packet).unwrap(), repr);
        prop_assert_eq!(packet.payload(), &payload[..]);
    }

    #[test]
    fn udp_v6_payload_flip_detected(
        src in arb_ipv6(),
        dst in arb_ipv6(),
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        flip_bit in 0usize..8,
        at in any::<proptest::sample::Index>(),
    ) {
        let repr = UdpRepr { src_port: 7, dst_port: 8, payload_len: payload.len() };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = UdpPacket::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        p.payload_mut().copy_from_slice(&payload);
        p.fill_checksum_v6(src, dst);
        let idx = 8 + at.index(payload.len());
        buf[idx] ^= 1 << flip_bit;
        let packet = UdpPacket::new_checked(&buf[..]).unwrap();
        prop_assert!(!packet.verify_checksum_v6(src, dst));
    }

    #[test]
    fn tango_emit_parse_roundtrip(
        path_id in any::<u16>(),
        inner_proto in any::<u16>(),
        sequence in any::<u32>(),
        timestamp_ns in any::<u64>(),
        probe in any::<bool>(),
    ) {
        let flags = if probe { TangoFlags::probe() } else { TangoFlags::measured() };
        let repr = TangoRepr { flags, path_id, inner_proto, sequence, timestamp_ns };
        let mut buf = vec![0u8; TANGO_HEADER_LEN];
        let mut p = TangoPacket::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        let packet = TangoPacket::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(TangoRepr::parse(&packet).unwrap(), repr);
    }

    #[test]
    fn cidr_v4_contains_consistent_with_network(
        addr in arb_ipv4(),
        len in 0u8..=32,
        probe in arb_ipv4(),
    ) {
        let c = Ipv4Cidr::new(addr, len).unwrap();
        prop_assert!(c.contains(c.network()));
        prop_assert!(c.contains(c.broadcast()));
        // Canonicalization: constructing from any contained address gives
        // the same prefix.
        if c.contains(probe) {
            prop_assert_eq!(Ipv4Cidr::new(probe, len).unwrap(), c);
        }
        // Display/parse roundtrip.
        let reparsed: Ipv4Cidr = c.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, c);
    }

    #[test]
    fn cidr_v6_display_parse_roundtrip(addr in arb_ipv6(), len in 0u8..=128) {
        let c = Ipv6Cidr::new(addr, len).unwrap();
        let reparsed: Ipv6Cidr = c.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, c);
        prop_assert!(c.contains(c.network()));
    }

    #[test]
    fn trie_longest_match_agrees_with_linear_scan(
        prefixes in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..40),
        probes in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        let mut trie = PrefixTrie::new();
        let mut list: Vec<(IpCidr, usize)> = Vec::new();
        for (i, (bits, len)) in prefixes.iter().enumerate() {
            let c = IpCidr::V4(Ipv4Cidr::new(Ipv4Addr::from(*bits), *len).unwrap());
            trie.insert(c, i);
            // Linear model keeps last writer for duplicate prefixes,
            // matching insert-replace semantics.
            if let Some(slot) = list.iter_mut().find(|(p, _)| *p == c) {
                slot.1 = i;
            } else {
                list.push((c, i));
            }
        }
        for probe in probes {
            let a = IpAddr::V4(Ipv4Addr::from(probe));
            let expect = list
                .iter()
                .filter(|(p, _)| p.contains(a))
                .max_by_key(|(p, _)| p.prefix_len())
                .map(|(p, v)| (*p, *v));
            let got = trie.longest_match(a).map(|(p, v)| (p, *v));
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn trie_insert_remove_restores(
        base in proptest::collection::vec((any::<u32>(), 0u8..=32), 0..20),
        extra_bits in any::<u32>(),
        extra_len in 0u8..=32,
        probes in proptest::collection::vec(any::<u32>(), 1..20),
    ) {
        let mut trie = PrefixTrie::new();
        for (i, (bits, len)) in base.iter().enumerate() {
            trie.insert(IpCidr::V4(Ipv4Cidr::new(Ipv4Addr::from(*bits), *len).unwrap()), i);
        }
        let extra = IpCidr::V4(Ipv4Cidr::new(Ipv4Addr::from(extra_bits), extra_len).unwrap());
        let before: Vec<_> = probes
            .iter()
            .map(|p| trie.longest_match(IpAddr::V4(Ipv4Addr::from(*p))).map(|(c, v)| (c, *v)))
            .collect();
        let preexisting = trie.get(&extra).copied();
        trie.insert(extra, usize::MAX);
        match preexisting {
            Some(v) => { trie.insert(extra, v); }
            None => { trie.remove(&extra); }
        }
        let after: Vec<_> = probes
            .iter()
            .map(|p| trie.longest_match(IpAddr::V4(Ipv4Addr::from(*p))).map(|(c, v)| (c, *v)))
            .collect();
        prop_assert_eq!(before, after);
    }
}
