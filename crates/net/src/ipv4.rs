//! IPv4 header view and representation (RFC 791).
//!
//! The Tango data plane forwards host traffic that may be IPv4 while the
//! tunnel overlay itself runs over IPv6 (as in the paper's prototype) or
//! IPv4. Both directions need full parse/emit with checksums.

use crate::checksum;
use crate::error::{Error, Result};
use std::net::Ipv4Addr;

/// Length of an IPv4 header without options.
pub const HEADER_LEN: usize = 20;

mod field {
    pub const VER_IHL: usize = 0;
    pub const DSCP_ECN: usize = 1;
    pub const LENGTH: core::ops::Range<usize> = 2..4;
    pub const IDENT: core::ops::Range<usize> = 4..6;
    pub const FLAGS_FRAG: core::ops::Range<usize> = 6..8;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: core::ops::Range<usize> = 10..12;
    pub const SRC: core::ops::Range<usize> = 12..16;
    pub const DST: core::ops::Range<usize> = 16..20;
}

/// A read/write view of an IPv4 packet in a byte buffer.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wrap a buffer without validation. Accessors may panic on a short
    /// buffer; prefer [`Ipv4Packet::new_checked`] for untrusted input.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wrap and validate structure: version, IHL, total length vs buffer.
    ///
    /// Rejects options (IHL > 5) and fragments with [`Error::Unsupported`] —
    /// see the crate-level "omitted features" note.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Self::new_unchecked(buffer);
        packet.check()?;
        Ok(packet)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if self.version() != 4 {
            return Err(Error::Malformed);
        }
        if self.header_len() != HEADER_LEN {
            return Err(Error::Unsupported); // IPv4 options not supported
        }
        let total = self.total_len() as usize;
        if total < HEADER_LEN {
            return Err(Error::Malformed);
        }
        if total > data.len() {
            return Err(Error::Truncated);
        }
        if self.more_fragments() || self.fragment_offset() != 0 {
            return Err(Error::Unsupported); // fragments not supported
        }
        Ok(())
    }

    /// IP version field (must be 4).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[field::VER_IHL] >> 4
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[field::VER_IHL] & 0x0f) * 4
    }

    /// DSCP/ECN byte.
    pub fn dscp_ecn(&self) -> u8 {
        self.buffer.as_ref()[field::DSCP_ECN]
    }

    /// Total length (header + payload).
    pub fn total_len(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::LENGTH][0], d[field::LENGTH.start + 1]])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::IDENT.start], d[field::IDENT.start + 1]])
    }

    /// Don't-fragment flag.
    pub fn dont_fragment(&self) -> bool {
        self.buffer.as_ref()[field::FLAGS_FRAG.start] & 0x40 != 0
    }

    /// More-fragments flag.
    pub fn more_fragments(&self) -> bool {
        self.buffer.as_ref()[field::FLAGS_FRAG.start] & 0x20 != 0
    }

    /// Fragment offset in 8-byte units.
    pub fn fragment_offset(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::FLAGS_FRAG.start], d[field::FLAGS_FRAG.start + 1]]) & 0x1fff
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// Protocol number of the payload.
    pub fn protocol(&self) -> u8 {
        self.buffer.as_ref()[field::PROTOCOL]
    }

    /// Header checksum field as stored.
    pub fn checksum_field(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::CHECKSUM.start], d[field::CHECKSUM.start + 1]])
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr::new(d[12], d[13], d[14], d[15])
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr::new(d[16], d[17], d[18], d[19])
    }

    /// Verify the header checksum.
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(&self.buffer.as_ref()[..HEADER_LEN])
    }

    /// The payload bytes (after the header, within total length).
    pub fn payload(&self) -> &[u8] {
        let total = self.total_len() as usize;
        &self.buffer.as_ref()[HEADER_LEN..total]
    }

    /// Consume the view and return the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Set version and IHL (always 4 / 5 here).
    pub fn set_version_ihl(&mut self) {
        self.buffer.as_mut()[field::VER_IHL] = 0x45;
    }

    /// Set the DSCP/ECN byte.
    pub fn set_dscp_ecn(&mut self, value: u8) {
        self.buffer.as_mut()[field::DSCP_ECN] = value;
    }

    /// Set total length.
    pub fn set_total_len(&mut self, value: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&value.to_be_bytes());
    }

    /// Set identification.
    pub fn set_ident(&mut self, value: u16) {
        self.buffer.as_mut()[field::IDENT].copy_from_slice(&value.to_be_bytes());
    }

    /// Set flags: DF and clear fragmenting (Tango never fragments).
    pub fn set_flags_df(&mut self, df: bool) {
        let b = if df { 0x40 } else { 0x00 };
        self.buffer.as_mut()[field::FLAGS_FRAG].copy_from_slice(&[b, 0]);
    }

    /// Set time to live.
    pub fn set_ttl(&mut self, value: u8) {
        self.buffer.as_mut()[field::TTL] = value;
    }

    /// Set payload protocol.
    pub fn set_protocol(&mut self, value: u8) {
        self.buffer.as_mut()[field::PROTOCOL] = value;
    }

    /// Set source address.
    pub fn set_src_addr(&mut self, value: Ipv4Addr) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(&value.octets());
    }

    /// Set destination address.
    pub fn set_dst_addr(&mut self, value: Ipv4Addr) {
        self.buffer.as_mut()[field::DST].copy_from_slice(&value.octets());
    }

    /// Recompute and store the header checksum.
    pub fn fill_checksum(&mut self) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let ck = checksum::checksum(&self.buffer.as_ref()[..HEADER_LEN]);
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&ck.to_be_bytes());
    }

    /// Mutable payload slice.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let total = self.total_len() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..total]
    }
}

/// Owned high-level representation of an IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address.
    pub src_addr: Ipv4Addr,
    /// Destination address.
    pub dst_addr: Ipv4Addr,
    /// Payload protocol number.
    pub protocol: u8,
    /// Payload length in bytes (excluding this header).
    pub payload_len: usize,
    /// Time to live for emitted packets.
    pub ttl: u8,
    /// DSCP/ECN byte, copied through the tunnel for QoS transparency.
    pub dscp_ecn: u8,
}

impl Ipv4Repr {
    /// Parse a validated packet into a representation, verifying the
    /// header checksum.
    pub fn parse<T: AsRef<[u8]>>(packet: &Ipv4Packet<T>) -> Result<Self> {
        packet.check()?;
        if !packet.verify_checksum() {
            return Err(Error::Checksum);
        }
        Ok(Self {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            protocol: packet.protocol(),
            payload_len: packet.total_len() as usize - HEADER_LEN,
            ttl: packet.ttl(),
            dscp_ecn: packet.dscp_ecn(),
        })
    }

    /// The length of the emitted header.
    pub fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Total length of the emitted packet.
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit into the start of `packet`'s buffer and fill the checksum.
    /// The buffer must be at least `total_len()` bytes.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Ipv4Packet<T>) -> Result<()> {
        if packet.buffer.as_ref().len() < self.total_len() {
            return Err(Error::Truncated);
        }
        if self.total_len() > usize::from(u16::MAX) {
            return Err(Error::Malformed);
        }
        packet.set_version_ihl();
        packet.set_dscp_ecn(self.dscp_ecn);
        packet.set_total_len(self.total_len() as u16);
        packet.set_ident(0);
        packet.set_flags_df(true);
        packet.set_ttl(self.ttl);
        packet.set_protocol(self.protocol);
        packet.set_src_addr(self.src_addr);
        packet.set_dst_addr(self.dst_addr);
        packet.fill_checksum();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr() -> Ipv4Repr {
        Ipv4Repr {
            src_addr: Ipv4Addr::new(192, 0, 2, 1),
            dst_addr: Ipv4Addr::new(198, 51, 100, 2),
            protocol: 17,
            payload_len: 12,
            ttl: 64,
            dscp_ecn: 0,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.total_len()];
        let mut packet = Ipv4Packet::new_unchecked(&mut buf);
        repr.emit(&mut packet).unwrap();
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum());
        let parsed = Ipv4Repr::parse(&packet).unwrap();
        assert_eq!(parsed, repr);
    }

    #[test]
    fn checked_rejects_short_buffer() {
        assert_eq!(
            Ipv4Packet::new_checked(&[0x45u8; 10][..]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn checked_rejects_wrong_version() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Ipv4Packet::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        buf[0] = 0x65; // version 6
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn checked_rejects_options() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.total_len() + 4];
        let mut p = Ipv4Packet::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        buf[0] = 0x46; // IHL = 6 (one option word)
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            Error::Unsupported
        );
    }

    #[test]
    fn checked_rejects_fragments() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Ipv4Packet::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        buf[6] = 0x20; // MF set
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            Error::Unsupported
        );
        buf[6] = 0x00;
        buf[7] = 0x08; // nonzero offset
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            Error::Unsupported
        );
    }

    #[test]
    fn checked_rejects_length_lies() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Ipv4Packet::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        // total_len larger than buffer
        buf[2..4].copy_from_slice(&(repr.total_len() as u16 + 8).to_be_bytes());
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            Error::Truncated
        );
        // total_len smaller than header
        buf[2..4].copy_from_slice(&10u16.to_be_bytes());
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn parse_rejects_bad_checksum() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Ipv4Packet::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        buf[10] ^= 0xff;
        let packet = Ipv4Packet::new_unchecked(&buf[..]);
        assert_eq!(Ipv4Repr::parse(&packet).unwrap_err(), Error::Checksum);
    }

    #[test]
    fn payload_respects_total_len() {
        let repr = sample_repr();
        // Buffer longer than the packet: payload must stop at total_len.
        let mut buf = vec![0u8; repr.total_len() + 16];
        let mut p = Ipv4Packet::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.payload().len(), repr.payload_len);
    }

    #[test]
    fn payload_mut_writes_through() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Ipv4Packet::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        p.payload_mut().copy_from_slice(b"hello tango!");
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.payload(), b"hello tango!");
    }

    #[test]
    fn emit_rejects_undersized_buffer() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.total_len() - 1];
        let mut p = Ipv4Packet::new_unchecked(&mut buf);
        assert_eq!(repr.emit(&mut p).unwrap_err(), Error::Truncated);
    }
}
