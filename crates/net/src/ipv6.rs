//! IPv6 header view and representation (RFC 8200).
//!
//! The Tango prototype's tunnel overlay runs over IPv6: each of the
//! announced /48 prefixes corresponds to one wide-area path, and tunnel
//! endpoint addresses are drawn from those prefixes (§4).

use crate::error::{Error, Result};
use std::net::Ipv6Addr;

/// Length of the fixed IPv6 header.
pub const HEADER_LEN: usize = 40;

mod field {
    pub const VER_TC_FL: core::ops::Range<usize> = 0..4;
    pub const PAYLOAD_LEN: core::ops::Range<usize> = 4..6;
    pub const NEXT_HEADER: usize = 6;
    pub const HOP_LIMIT: usize = 7;
    pub const SRC: core::ops::Range<usize> = 8..24;
    pub const DST: core::ops::Range<usize> = 24..40;
}

/// A read/write view of an IPv6 packet in a byte buffer.
#[derive(Debug, Clone)]
pub struct Ipv6Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv6Packet<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wrap and validate: version and payload length vs buffer size.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Self::new_unchecked(buffer);
        packet.check()?;
        Ok(packet)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if self.version() != 6 {
            return Err(Error::Malformed);
        }
        if HEADER_LEN + self.payload_len() as usize > data.len() {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// IP version field (must be 6).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[0] >> 4
    }

    /// Traffic class byte.
    pub fn traffic_class(&self) -> u8 {
        let d = self.buffer.as_ref();
        (d[0] << 4) | (d[1] >> 4)
    }

    /// 20-bit flow label. Tango sets this on tunnel packets so that any
    /// flow-label-aware ECMP also hashes all tunnel traffic identically.
    pub fn flow_label(&self) -> u32 {
        let d = self.buffer.as_ref();
        (u32::from(d[1] & 0x0f) << 16) | (u32::from(d[2]) << 8) | u32::from(d[3])
    }

    /// Payload length (everything after the fixed header).
    pub fn payload_len(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::PAYLOAD_LEN.start], d[field::PAYLOAD_LEN.start + 1]])
    }

    /// Next-header protocol number.
    pub fn next_header(&self) -> u8 {
        self.buffer.as_ref()[field::NEXT_HEADER]
    }

    /// Hop limit.
    pub fn hop_limit(&self) -> u8 {
        self.buffer.as_ref()[field::HOP_LIMIT]
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv6Addr {
        let d = self.buffer.as_ref();
        let mut o = [0u8; 16];
        o.copy_from_slice(&d[field::SRC]);
        Ipv6Addr::from(o)
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv6Addr {
        let d = self.buffer.as_ref();
        let mut o = [0u8; 16];
        o.copy_from_slice(&d[field::DST]);
        Ipv6Addr::from(o)
    }

    /// The payload bytes.
    pub fn payload(&self) -> &[u8] {
        let len = self.payload_len() as usize;
        &self.buffer.as_ref()[HEADER_LEN..HEADER_LEN + len]
    }

    /// Consume the view and return the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv6Packet<T> {
    /// Set version, traffic class and flow label in one go.
    pub fn set_ver_tc_fl(&mut self, traffic_class: u8, flow_label: u32) {
        let d = self.buffer.as_mut();
        let word: u32 =
            (6u32 << 28) | (u32::from(traffic_class) << 20) | (flow_label & 0x000f_ffff);
        d[field::VER_TC_FL].copy_from_slice(&word.to_be_bytes());
    }

    /// Set payload length.
    pub fn set_payload_len(&mut self, value: u16) {
        self.buffer.as_mut()[field::PAYLOAD_LEN].copy_from_slice(&value.to_be_bytes());
    }

    /// Set next header.
    pub fn set_next_header(&mut self, value: u8) {
        self.buffer.as_mut()[field::NEXT_HEADER] = value;
    }

    /// Set hop limit.
    pub fn set_hop_limit(&mut self, value: u8) {
        self.buffer.as_mut()[field::HOP_LIMIT] = value;
    }

    /// Set source address.
    pub fn set_src_addr(&mut self, value: Ipv6Addr) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(&value.octets());
    }

    /// Set destination address.
    pub fn set_dst_addr(&mut self, value: Ipv6Addr) {
        self.buffer.as_mut()[field::DST].copy_from_slice(&value.octets());
    }

    /// Mutable payload slice.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = self.payload_len() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..HEADER_LEN + len]
    }
}

/// Owned high-level representation of an IPv6 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6Repr {
    /// Source address.
    pub src_addr: Ipv6Addr,
    /// Destination address.
    pub dst_addr: Ipv6Addr,
    /// Next-header protocol number.
    pub next_header: u8,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Hop limit for emitted packets.
    pub hop_limit: u8,
    /// Traffic class (copied through tunnels).
    pub traffic_class: u8,
    /// Flow label (Tango uses a fixed per-tunnel label to pin ECMP).
    pub flow_label: u32,
}

impl Ipv6Repr {
    /// Parse a validated packet into a representation.
    /// (IPv6 has no header checksum; UDP's covers the addresses.)
    pub fn parse<T: AsRef<[u8]>>(packet: &Ipv6Packet<T>) -> Result<Self> {
        packet.check()?;
        Ok(Self {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            next_header: packet.next_header(),
            payload_len: packet.payload_len() as usize,
            hop_limit: packet.hop_limit(),
            traffic_class: packet.traffic_class(),
            flow_label: packet.flow_label(),
        })
    }

    /// The length of the emitted header.
    pub fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Total length of the emitted packet.
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit into the start of `packet`'s buffer.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Ipv6Packet<T>) -> Result<()> {
        if packet.buffer.as_ref().len() < self.total_len() {
            return Err(Error::Truncated);
        }
        if self.payload_len > usize::from(u16::MAX) || self.flow_label > 0x000f_ffff {
            return Err(Error::Malformed);
        }
        packet.set_ver_tc_fl(self.traffic_class, self.flow_label);
        packet.set_payload_len(self.payload_len as u16);
        packet.set_next_header(self.next_header);
        packet.set_hop_limit(self.hop_limit);
        packet.set_src_addr(self.src_addr);
        packet.set_dst_addr(self.dst_addr);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr() -> Ipv6Repr {
        Ipv6Repr {
            src_addr: "2001:db8:100::1".parse().unwrap(),
            dst_addr: "2001:db8:200::2".parse().unwrap(),
            next_header: 17,
            payload_len: 16,
            hop_limit: 64,
            traffic_class: 0,
            flow_label: 0x1234,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Ipv6Packet::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        let packet = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(Ipv6Repr::parse(&packet).unwrap(), repr);
    }

    #[test]
    fn ver_tc_fl_bit_layout() {
        let mut repr = sample_repr();
        repr.traffic_class = 0xab;
        repr.flow_label = 0xfffff;
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Ipv6Packet::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        // 6 | ab | fffff -> 0x6abfffff
        assert_eq!(&buf[0..4], &[0x6a, 0xbf, 0xff, 0xff]);
        let packet = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.traffic_class(), 0xab);
        assert_eq!(packet.flow_label(), 0xfffff);
        assert_eq!(packet.version(), 6);
    }

    #[test]
    fn checked_rejects_wrong_version() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Ipv6Packet::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        buf[0] = 0x45;
        assert_eq!(
            Ipv6Packet::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn checked_rejects_truncation() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Ipv6Packet::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        assert_eq!(
            Ipv6Packet::new_checked(&buf[..HEADER_LEN - 1]).unwrap_err(),
            Error::Truncated
        );
        // payload_len lying beyond the buffer
        buf[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(
            Ipv6Packet::new_checked(&buf[..]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn emit_rejects_oversized_flow_label() {
        let mut repr = sample_repr();
        repr.flow_label = 0x100000;
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Ipv6Packet::new_unchecked(&mut buf);
        assert_eq!(repr.emit(&mut p).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn payload_windowing() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.total_len() + 8]; // slack after packet
        let mut p = Ipv6Packet::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        p.payload_mut().fill(0x5a);
        let packet = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.payload().len(), repr.payload_len);
        assert!(packet.payload().iter().all(|&b| b == 0x5a));
        assert!(buf[repr.total_len()..].iter().all(|&b| b == 0));
    }
}
