//! The Tango tunnel header.
//!
//! §3 of the paper: *"Tango adds an IP tunnel header, a UDP header (to
//! control ECMP behavior), and a timestamp to data packets. The destination
//! switch records the timestamp and computes the difference between the
//! timestamp and current system time before removing the encapsulation...
//! adding tunnel-specific sequence numbers on packets can allow Tango to
//! additionally compute loss and reordering."*
//!
//! The paper does not specify an exact bit layout, so this crate defines
//! one (documented below) and uses it consistently across the data plane:
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |         magic 0x7A60          |    version    |     flags     |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |            path id            |         inner proto           |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                     tunnel sequence number                    |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                                                               |
//! +                  sender timestamp (ns, local clock)           +
//! |                                                               |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```
//!
//! * `magic`/`version` guard against decapsulating stray UDP traffic that
//!   happens to arrive on the tunnel port.
//! * `path id` identifies the tunnel (→ wide-area path) the sender chose,
//!   so the receiver attributes the delay sample to the right path even if
//!   tunnels share an address (e.g. during re-provisioning).
//! * `inner proto` says how to interpret the decapsulated payload
//!   (4 = IPv4 packet, 41 = IPv6 packet), mirroring IP protocol numbers.
//! * `sequence` is per-tunnel and lets the receiver compute loss and
//!   reordering.
//! * `timestamp` is the *sender's node-local clock* in nanoseconds. Clocks
//!   need not be synchronized: the receiver-side OWD estimate is offset by
//!   a constant, which cancels when comparing paths (§4.2).

use crate::error::{Error, Result};

/// Magic number identifying a Tango tunnel header.
pub const TANGO_MAGIC: u16 = 0x7A60;
/// Wire-format version implemented by this crate.
pub const TANGO_VERSION: u8 = 1;
/// Length of the Tango tunnel header in bytes.
pub const TANGO_HEADER_LEN: usize = 20;
/// The well-known UDP destination port Tango tunnels use.
pub const TANGO_UDP_PORT: u16 = 31328;

/// Flag bits in the Tango header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TangoFlags(pub u8);

impl TangoFlags {
    /// The timestamp field is valid.
    pub const HAS_TIMESTAMP: u8 = 0b0000_0001;
    /// The sequence-number field is valid.
    pub const HAS_SEQUENCE: u8 = 0b0000_0010;
    /// This packet is a bare keepalive probe (no inner packet).
    pub const PROBE: u8 = 0b0000_0100;
    /// An 8-byte SipHash-2-4 tag trails the packet (authenticated
    /// telemetry, §6). The tag covers header and payload.
    pub const AUTH: u8 = 0b0000_1000;
    /// The payload is a measurement report for the peer's controller
    /// (the in-band cooperation feedback channel), not host traffic.
    pub const REPORT: u8 = 0b0001_0000;

    /// All flags this implementation understands.
    pub const KNOWN: u8 =
        Self::HAS_TIMESTAMP | Self::HAS_SEQUENCE | Self::PROBE | Self::AUTH | Self::REPORT;

    /// Is the timestamp flag set?
    pub fn has_timestamp(self) -> bool {
        self.0 & Self::HAS_TIMESTAMP != 0
    }

    /// Is the sequence flag set?
    pub fn has_sequence(self) -> bool {
        self.0 & Self::HAS_SEQUENCE != 0
    }

    /// Is this a probe packet?
    pub fn is_probe(self) -> bool {
        self.0 & Self::PROBE != 0
    }

    /// Does an authentication tag trail the packet?
    pub fn has_auth(self) -> bool {
        self.0 & Self::AUTH != 0
    }

    /// Is this a measurement report?
    pub fn is_report(self) -> bool {
        self.0 & Self::REPORT != 0
    }

    /// Set the AUTH bit.
    pub fn with_auth(self) -> Self {
        TangoFlags(self.0 | Self::AUTH)
    }

    /// Flags for an in-band measurement report.
    pub fn report() -> Self {
        TangoFlags(Self::HAS_TIMESTAMP | Self::HAS_SEQUENCE | Self::REPORT)
    }

    /// Flags with all measurement fields enabled (the normal data packet).
    pub fn measured() -> Self {
        TangoFlags(Self::HAS_TIMESTAMP | Self::HAS_SEQUENCE)
    }

    /// Flags for a probe packet.
    pub fn probe() -> Self {
        TangoFlags(Self::HAS_TIMESTAMP | Self::HAS_SEQUENCE | Self::PROBE)
    }
}

mod field {
    pub const MAGIC: core::ops::Range<usize> = 0..2;
    pub const VERSION: usize = 2;
    pub const FLAGS: usize = 3;
    pub const PATH_ID: core::ops::Range<usize> = 4..6;
    pub const INNER_PROTO: core::ops::Range<usize> = 6..8;
    pub const SEQUENCE: core::ops::Range<usize> = 8..12;
    pub const TIMESTAMP: core::ops::Range<usize> = 12..20;
}

/// A read/write view of a Tango tunnel header (and trailing inner packet).
#[derive(Debug, Clone)]
pub struct TangoPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TangoPacket<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wrap and validate magic, version and length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Self::new_unchecked(buffer);
        packet.check()?;
        Ok(packet)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < TANGO_HEADER_LEN {
            return Err(Error::Truncated);
        }
        if self.magic() != TANGO_MAGIC {
            return Err(Error::NotTango);
        }
        if self.version() != TANGO_VERSION {
            return Err(Error::NotTango);
        }
        Ok(())
    }

    /// The magic field.
    pub fn magic(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[0], d[1]])
    }

    /// The version field.
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[field::VERSION]
    }

    /// The flags field.
    pub fn flags(&self) -> TangoFlags {
        TangoFlags(self.buffer.as_ref()[field::FLAGS])
    }

    /// The tunnel/path identifier.
    pub fn path_id(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[4], d[5]])
    }

    /// Protocol of the inner (encapsulated) packet: 4 = IPv4, 41 = IPv6.
    pub fn inner_proto(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[6], d[7]])
    }

    /// Per-tunnel sequence number.
    pub fn sequence(&self) -> u32 {
        let d = self.buffer.as_ref();
        u32::from_be_bytes([d[8], d[9], d[10], d[11]])
    }

    /// Sender timestamp, nanoseconds on the sender's local clock.
    pub fn timestamp_ns(&self) -> u64 {
        let d = self.buffer.as_ref();
        let mut b = [0u8; 8];
        b.copy_from_slice(&d[field::TIMESTAMP]);
        u64::from_be_bytes(b)
    }

    /// The encapsulated inner packet.
    pub fn inner(&self) -> &[u8] {
        &self.buffer.as_ref()[TANGO_HEADER_LEN..]
    }

    /// Consume the view and return the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TangoPacket<T> {
    /// Write magic and version.
    pub fn set_magic_version(&mut self) {
        self.buffer.as_mut()[field::MAGIC].copy_from_slice(&TANGO_MAGIC.to_be_bytes());
        self.buffer.as_mut()[field::VERSION] = TANGO_VERSION;
    }

    /// Set flags.
    pub fn set_flags(&mut self, flags: TangoFlags) {
        self.buffer.as_mut()[field::FLAGS] = flags.0;
    }

    /// Set the path identifier.
    pub fn set_path_id(&mut self, value: u16) {
        self.buffer.as_mut()[field::PATH_ID].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the inner protocol.
    pub fn set_inner_proto(&mut self, value: u16) {
        self.buffer.as_mut()[field::INNER_PROTO].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the sequence number.
    pub fn set_sequence(&mut self, value: u32) {
        self.buffer.as_mut()[field::SEQUENCE].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the sender timestamp.
    pub fn set_timestamp_ns(&mut self, value: u64) {
        self.buffer.as_mut()[field::TIMESTAMP].copy_from_slice(&value.to_be_bytes());
    }

    /// Mutable access to the encapsulated inner packet.
    pub fn inner_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[TANGO_HEADER_LEN..]
    }
}

/// Owned high-level representation of a Tango tunnel header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TangoRepr {
    /// Flag bits.
    pub flags: TangoFlags,
    /// Tunnel/path identifier.
    pub path_id: u16,
    /// Inner packet protocol (4 = IPv4, 41 = IPv6, 0 = none/probe).
    pub inner_proto: u16,
    /// Per-tunnel sequence number.
    pub sequence: u32,
    /// Sender node-local timestamp in nanoseconds.
    pub timestamp_ns: u64,
}

impl TangoRepr {
    /// Parse a validated packet into a representation.
    pub fn parse<T: AsRef<[u8]>>(packet: &TangoPacket<T>) -> Result<Self> {
        packet.check()?;
        let flags = packet.flags();
        if flags.0 & !TangoFlags::KNOWN != 0 {
            return Err(Error::Unsupported);
        }
        Ok(Self {
            flags,
            path_id: packet.path_id(),
            inner_proto: packet.inner_proto(),
            sequence: packet.sequence(),
            timestamp_ns: packet.timestamp_ns(),
        })
    }

    /// Length of the emitted header.
    pub fn header_len(&self) -> usize {
        TANGO_HEADER_LEN
    }

    /// Emit the header into the start of `packet`'s buffer.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut TangoPacket<T>) -> Result<()> {
        if packet.buffer.as_ref().len() < TANGO_HEADER_LEN {
            return Err(Error::Truncated);
        }
        packet.set_magic_version();
        packet.set_flags(self.flags);
        packet.set_path_id(self.path_id);
        packet.set_inner_proto(self.inner_proto);
        packet.set_sequence(self.sequence);
        packet.set_timestamp_ns(self.timestamp_ns);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr() -> TangoRepr {
        TangoRepr {
            flags: TangoFlags::measured(),
            path_id: 3,
            inner_proto: 41,
            sequence: 0xdead_beef,
            timestamp_ns: 1_234_567_890_123,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let repr = sample_repr();
        let mut buf = vec![0u8; TANGO_HEADER_LEN + 5];
        let mut p = TangoPacket::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        p.inner_mut().copy_from_slice(b"inner");
        let packet = TangoPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(TangoRepr::parse(&packet).unwrap(), repr);
        assert_eq!(packet.inner(), b"inner");
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let repr = sample_repr();
        let mut buf = vec![0u8; TANGO_HEADER_LEN];
        let mut p = TangoPacket::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        buf[0] = 0x00;
        assert_eq!(
            TangoPacket::new_checked(&buf[..]).unwrap_err(),
            Error::NotTango
        );
        buf[0] = 0x7a;
        buf[2] = 99;
        assert_eq!(
            TangoPacket::new_checked(&buf[..]).unwrap_err(),
            Error::NotTango
        );
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(
            TangoPacket::new_checked(&[0u8; TANGO_HEADER_LEN - 1][..]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn rejects_unknown_flags() {
        let repr = sample_repr();
        let mut buf = vec![0u8; TANGO_HEADER_LEN];
        let mut p = TangoPacket::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        buf[3] |= 0x80; // reserved bit
        let packet = TangoPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(TangoRepr::parse(&packet).unwrap_err(), Error::Unsupported);
    }

    #[test]
    fn flags_accessors() {
        let f = TangoFlags::probe();
        assert!(f.has_timestamp() && f.has_sequence() && f.is_probe());
        assert!(!f.has_auth() && !f.is_report());
        let m = TangoFlags::measured();
        assert!(m.has_timestamp() && m.has_sequence() && !m.is_probe());
        let none = TangoFlags::default();
        assert!(!none.has_timestamp() && !none.has_sequence() && !none.is_probe());
        let a = TangoFlags::measured().with_auth();
        assert!(a.has_auth() && a.has_timestamp());
        let r = TangoFlags::report();
        assert!(r.is_report() && !r.is_probe());
    }

    #[test]
    fn timestamp_extremes() {
        for ts in [0u64, u64::MAX, 1] {
            let mut repr = sample_repr();
            repr.timestamp_ns = ts;
            let mut buf = vec![0u8; TANGO_HEADER_LEN];
            let mut p = TangoPacket::new_unchecked(&mut buf);
            repr.emit(&mut p).unwrap();
            let packet = TangoPacket::new_checked(&buf[..]).unwrap();
            assert_eq!(packet.timestamp_ns(), ts);
        }
    }

    #[test]
    fn header_layout_is_stable() {
        // Pin the byte layout so the wire format never changes silently.
        let repr = TangoRepr {
            flags: TangoFlags(0x03),
            path_id: 0x0102,
            inner_proto: 0x0029,
            sequence: 0x0a0b0c0d,
            timestamp_ns: 0x1122334455667788,
        };
        let mut buf = vec![0u8; TANGO_HEADER_LEN];
        let mut p = TangoPacket::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        assert_eq!(
            buf,
            vec![
                0x7a, 0x60, 0x01, 0x03, // magic, version, flags
                0x01, 0x02, 0x00, 0x29, // path id, inner proto
                0x0a, 0x0b, 0x0c, 0x0d, // sequence
                0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, // timestamp
            ]
        );
    }
}
