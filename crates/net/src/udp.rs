//! UDP header view and representation (RFC 768).
//!
//! Tango encapsulates tunneled packets in "an IP tunnel header, a UDP
//! header (to control ECMP behavior), and a timestamp" (§3). The UDP
//! ports are fixed per tunnel so that 5-tuple ECMP hashing in the core
//! pins every tunnel to a single underlying path — without this, ECMP
//! would smear one tunnel's traffic over several physical paths and the
//! one-way-delay samples would mix distributions.

use crate::checksum::{self, Checksum};
use crate::error::{Error, Result};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Length of a UDP header.
pub const HEADER_LEN: usize = 8;

mod field {
    pub const SRC_PORT: core::ops::Range<usize> = 0..2;
    pub const DST_PORT: core::ops::Range<usize> = 2..4;
    pub const LENGTH: core::ops::Range<usize> = 4..6;
    pub const CHECKSUM: core::ops::Range<usize> = 6..8;
}

/// A read/write view of a UDP datagram in a byte buffer.
#[derive(Debug, Clone)]
pub struct UdpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpPacket<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wrap and validate the length field against the buffer.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Self::new_unchecked(buffer);
        packet.check()?;
        Ok(packet)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let len = self.len_field() as usize;
        if len < HEADER_LEN {
            return Err(Error::Malformed);
        }
        if len > data.len() {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[0], d[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[2], d[3]])
    }

    /// The UDP length field (header + payload).
    pub fn len_field(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[4], d[5]])
    }

    /// The stored checksum field.
    pub fn checksum_field(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[6], d[7]])
    }

    /// The payload bytes.
    pub fn payload(&self) -> &[u8] {
        let len = self.len_field() as usize;
        &self.buffer.as_ref()[HEADER_LEN..len]
    }

    /// Verify the checksum with an IPv4 pseudo-header. A zero checksum
    /// means "not computed" and is accepted per RFC 768.
    pub fn verify_checksum_v4(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let len = self.len_field();
        let mut c = checksum::pseudo_header_v4(src, dst, 17, len);
        c.add(&self.buffer.as_ref()[..len as usize]);
        c.finish() == 0
    }

    /// Verify the checksum with an IPv6 pseudo-header. Unlike IPv4, a
    /// zero checksum is illegal over IPv6 (RFC 8200 §8.1).
    pub fn verify_checksum_v6(&self, src: Ipv6Addr, dst: Ipv6Addr) -> bool {
        if self.checksum_field() == 0 {
            return false;
        }
        let len = self.len_field();
        let mut c = checksum::pseudo_header_v6(src, dst, 17, u32::from(len));
        c.add(&self.buffer.as_ref()[..len as usize]);
        c.finish() == 0
    }

    /// Consume the view and return the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpPacket<T> {
    /// Set source port.
    pub fn set_src_port(&mut self, value: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&value.to_be_bytes());
    }

    /// Set destination port.
    pub fn set_dst_port(&mut self, value: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the length field.
    pub fn set_len_field(&mut self, value: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&value.to_be_bytes());
    }

    /// Mutable payload slice.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = self.len_field() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..len]
    }

    fn fill_checksum_with(&mut self, mut c: Checksum) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let len = self.len_field() as usize;
        c.add(&self.buffer.as_ref()[..len]);
        let mut ck = c.finish();
        // An all-zero computed checksum is transmitted as 0xffff (RFC 768).
        if ck == 0 {
            ck = 0xffff;
        }
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&ck.to_be_bytes());
    }

    /// Compute and store the checksum with an IPv4 pseudo-header.
    pub fn fill_checksum_v4(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        let len = self.len_field();
        self.fill_checksum_with(checksum::pseudo_header_v4(src, dst, 17, len));
    }

    /// Compute and store the checksum with an IPv6 pseudo-header.
    pub fn fill_checksum_v6(&mut self, src: Ipv6Addr, dst: Ipv6Addr) {
        let len = self.len_field();
        self.fill_checksum_with(checksum::pseudo_header_v6(src, dst, 17, u32::from(len)));
    }
}

/// Owned high-level representation of a UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl UdpRepr {
    /// Parse a validated datagram (checksum verification is separate
    /// because it needs the pseudo-header addresses).
    pub fn parse<T: AsRef<[u8]>>(packet: &UdpPacket<T>) -> Result<Self> {
        packet.check()?;
        Ok(Self {
            src_port: packet.src_port(),
            dst_port: packet.dst_port(),
            payload_len: packet.len_field() as usize - HEADER_LEN,
        })
    }

    /// The length of the emitted header.
    pub fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Total length of the emitted datagram.
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit the header (ports + length; checksum must be filled after the
    /// payload is written, via `fill_checksum_v4`/`_v6`).
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut UdpPacket<T>) -> Result<()> {
        if packet.buffer.as_ref().len() < self.total_len() {
            return Err(Error::Truncated);
        }
        if self.total_len() > usize::from(u16::MAX) {
            return Err(Error::Malformed);
        }
        packet.set_src_port(self.src_port);
        packet.set_dst_port(self.dst_port);
        packet.set_len_field(self.total_len() as u16);
        packet.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4_pair() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(192, 0, 2, 1), Ipv4Addr::new(198, 51, 100, 2))
    }

    fn v6_pair() -> (Ipv6Addr, Ipv6Addr) {
        (
            "2001:db8:100::1".parse().unwrap(),
            "2001:db8:200::2".parse().unwrap(),
        )
    }

    #[test]
    fn roundtrip_v4_checksum() {
        let (src, dst) = v4_pair();
        let repr = UdpRepr {
            src_port: 4000,
            dst_port: 31328,
            payload_len: 11,
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = UdpPacket::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        p.payload_mut().copy_from_slice(b"tango tests");
        p.fill_checksum_v4(src, dst);
        let packet = UdpPacket::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum_v4(src, dst));
        assert_eq!(UdpRepr::parse(&packet).unwrap(), repr);
        assert_eq!(packet.payload(), b"tango tests");
    }

    #[test]
    fn roundtrip_v6_checksum() {
        let (src, dst) = v6_pair();
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
            payload_len: 4,
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = UdpPacket::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        p.payload_mut().copy_from_slice(b"abcd");
        p.fill_checksum_v6(src, dst);
        let packet = UdpPacket::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum_v6(src, dst));
    }

    #[test]
    fn corrupt_payload_fails_verification() {
        let (src, dst) = v6_pair();
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
            payload_len: 4,
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = UdpPacket::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        p.payload_mut().copy_from_slice(b"abcd");
        p.fill_checksum_v6(src, dst);
        buf[HEADER_LEN] ^= 0x01;
        let packet = UdpPacket::new_checked(&buf[..]).unwrap();
        assert!(!packet.verify_checksum_v6(src, dst));
    }

    #[test]
    fn zero_checksum_v4_accepted_v6_rejected() {
        let (s4, d4) = v4_pair();
        let (s6, d6) = v6_pair();
        let repr = UdpRepr {
            src_port: 9,
            dst_port: 9,
            payload_len: 0,
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = UdpPacket::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap(); // checksum left at zero
        let packet = UdpPacket::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum_v4(s4, d4));
        assert!(!packet.verify_checksum_v6(s6, d6));
    }

    #[test]
    fn length_field_validation() {
        let mut buf = [0u8; 8];
        buf[4..6].copy_from_slice(&7u16.to_be_bytes()); // < header
        assert_eq!(
            UdpPacket::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
        buf[4..6].copy_from_slice(&9u16.to_be_bytes()); // > buffer
        assert_eq!(
            UdpPacket::new_checked(&buf[..]).unwrap_err(),
            Error::Truncated
        );
        assert_eq!(
            UdpPacket::new_checked(&buf[..4]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn computed_zero_checksum_becomes_ffff() {
        // Craft src/dst/ports/payload such that the sum is 0xffff
        // (complement = 0) and confirm we transmit 0xffff instead of 0.
        let src = Ipv4Addr::new(0, 0, 0, 0);
        let dst = Ipv4Addr::new(0, 0, 0, 0);
        let repr = UdpRepr {
            src_port: 0,
            dst_port: 0,
            payload_len: 2,
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = UdpPacket::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        // pseudo-header contributes proto 17 + len 10 twice (len appears in
        // pseudo-header and header). Want total sum = 0xffff.
        // sum so far: 17 + 10 (pseudo) + 10 (len field) = 37 = 0x25.
        // payload word must be 0xffff - 0x25 = 0xffda.
        p.payload_mut().copy_from_slice(&0xffdau16.to_be_bytes());
        p.fill_checksum_v4(src, dst);
        let packet = UdpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.checksum_field(), 0xffff);
        assert!(packet.verify_checksum_v4(src, dst));
    }
}
