//! CIDR prefix types.
//!
//! In Tango, prefixes are re-thought as *routes*: each announced prefix
//! represents one wide-area path toward the announcing edge (§3). These
//! types therefore show up throughout the control plane (`tango-bgp`
//! announcements) and the data plane (tunnel endpoint allocation,
//! forwarding-table keys).

use crate::error::{Error, Result};
use core::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// An IPv4 prefix in CIDR notation, e.g. `203.0.113.0/24`.
///
/// The stored address is always the canonical network address (host bits
/// cleared), so two `Ipv4Cidr` values compare equal iff they denote the
/// same prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Cidr {
    addr: Ipv4Addr,
    prefix_len: u8,
}

impl Ipv4Cidr {
    /// Build a prefix; host bits of `addr` are cleared.
    /// Fails with [`Error::PrefixLen`] if `prefix_len > 32`.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Result<Self> {
        if prefix_len > 32 {
            return Err(Error::PrefixLen);
        }
        let bits = u32::from(addr) & mask_v4(prefix_len);
        Ok(Self {
            addr: Ipv4Addr::from(bits),
            prefix_len,
        })
    }

    /// The canonical network address.
    pub fn network(&self) -> Ipv4Addr {
        self.addr
    }

    /// The prefix length in bits.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// The last address covered by the prefix.
    pub fn broadcast(&self) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(self.addr) | !mask_v4(self.prefix_len))
    }

    /// Does this prefix cover `addr`?
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & mask_v4(self.prefix_len) == u32::from(self.addr)
    }

    /// Does this prefix cover the whole of `other`?
    pub fn covers(&self, other: &Ipv4Cidr) -> bool {
        self.prefix_len <= other.prefix_len && self.contains(other.addr)
    }

    /// Do the two prefixes share any address?
    pub fn overlaps(&self, other: &Ipv4Cidr) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The `i`-th host address inside the prefix (0 = network address).
    /// Returns `None` if `i` falls outside the prefix.
    pub fn host(&self, i: u32) -> Option<Ipv4Addr> {
        let size = 1u64 << (32 - self.prefix_len);
        if u64::from(i) >= size {
            return None;
        }
        Some(Ipv4Addr::from(u32::from(self.addr) + i))
    }

    /// Split into the two child prefixes one bit longer.
    /// Returns `None` for a /32.
    pub fn split(&self) -> Option<(Ipv4Cidr, Ipv4Cidr)> {
        if self.prefix_len >= 32 {
            return None;
        }
        let len = self.prefix_len + 1;
        let lo = Ipv4Cidr::new(self.addr, len).expect("len <= 32");
        let hi_bits = u32::from(self.addr) | (1 << (32 - len));
        let hi = Ipv4Cidr::new(Ipv4Addr::from(hi_bits), len).expect("len <= 32");
        Some((lo, hi))
    }
}

impl fmt::Display for Ipv4Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.prefix_len)
    }
}

impl FromStr for Ipv4Cidr {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self> {
        let (addr, len) = s.split_once('/').ok_or(Error::Malformed)?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| Error::Malformed)?;
        let len: u8 = len.parse().map_err(|_| Error::PrefixLen)?;
        Ipv4Cidr::new(addr, len)
    }
}

/// An IPv6 prefix in CIDR notation, e.g. `2001:db8:100::/48`.
///
/// Tango's prototype announces multiple /48s out of an institutional IPv6
/// block — one per wide-area path (§4). Canonicalized like [`Ipv4Cidr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv6Cidr {
    addr: Ipv6Addr,
    prefix_len: u8,
}

impl Ipv6Cidr {
    /// Build a prefix; host bits of `addr` are cleared.
    /// Fails with [`Error::PrefixLen`] if `prefix_len > 128`.
    pub fn new(addr: Ipv6Addr, prefix_len: u8) -> Result<Self> {
        if prefix_len > 128 {
            return Err(Error::PrefixLen);
        }
        let bits = u128::from(addr) & mask_v6(prefix_len);
        Ok(Self {
            addr: Ipv6Addr::from(bits),
            prefix_len,
        })
    }

    /// The canonical network address.
    pub fn network(&self) -> Ipv6Addr {
        self.addr
    }

    /// The prefix length in bits.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Does this prefix cover `addr`?
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        u128::from(addr) & mask_v6(self.prefix_len) == u128::from(self.addr)
    }

    /// Does this prefix cover the whole of `other`?
    pub fn covers(&self, other: &Ipv6Cidr) -> bool {
        self.prefix_len <= other.prefix_len && self.contains(other.addr)
    }

    /// Do the two prefixes share any address?
    pub fn overlaps(&self, other: &Ipv6Cidr) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The `i`-th address inside the prefix. `None` if out of range.
    pub fn host(&self, i: u128) -> Option<Ipv6Addr> {
        if self.prefix_len < 128 {
            let size_log2 = 128 - self.prefix_len;
            if size_log2 < 128 && i >> size_log2 != 0 {
                return None;
            }
        } else if i != 0 {
            return None;
        }
        Some(Ipv6Addr::from(u128::from(self.addr) + i))
    }

    /// The `i`-th sub-prefix of length `sub_len` inside this prefix
    /// (used to carve per-path tunnel /64s out of a /48).
    pub fn subnet(&self, sub_len: u8, i: u128) -> Result<Ipv6Cidr> {
        if sub_len < self.prefix_len || sub_len > 128 {
            return Err(Error::PrefixLen);
        }
        let extra = sub_len - self.prefix_len;
        if extra < 128 && extra > 0 && i >> extra != 0 {
            return Err(Error::PrefixLen);
        }
        if extra == 0 && i != 0 {
            return Err(Error::PrefixLen);
        }
        let bits = u128::from(self.addr) | (i << (128 - sub_len));
        Ipv6Cidr::new(Ipv6Addr::from(bits), sub_len)
    }
}

impl fmt::Display for Ipv6Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.prefix_len)
    }
}

impl FromStr for Ipv6Cidr {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self> {
        let (addr, len) = s.split_once('/').ok_or(Error::Malformed)?;
        let addr: Ipv6Addr = addr.parse().map_err(|_| Error::Malformed)?;
        let len: u8 = len.parse().map_err(|_| Error::PrefixLen)?;
        Ipv6Cidr::new(addr, len)
    }
}

/// A prefix of either address family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IpCidr {
    /// An IPv4 prefix.
    V4(Ipv4Cidr),
    /// An IPv6 prefix.
    V6(Ipv6Cidr),
}

impl IpCidr {
    /// Build a prefix from a generic address.
    pub fn new(addr: IpAddr, prefix_len: u8) -> Result<Self> {
        match addr {
            IpAddr::V4(a) => Ipv4Cidr::new(a, prefix_len).map(IpCidr::V4),
            IpAddr::V6(a) => Ipv6Cidr::new(a, prefix_len).map(IpCidr::V6),
        }
    }

    /// The canonical network address.
    pub fn network(&self) -> IpAddr {
        match self {
            IpCidr::V4(c) => IpAddr::V4(c.network()),
            IpCidr::V6(c) => IpAddr::V6(c.network()),
        }
    }

    /// The prefix length in bits.
    pub fn prefix_len(&self) -> u8 {
        match self {
            IpCidr::V4(c) => c.prefix_len(),
            IpCidr::V6(c) => c.prefix_len(),
        }
    }

    /// Does this prefix cover `addr`? Always false across families.
    pub fn contains(&self, addr: IpAddr) -> bool {
        match (self, addr) {
            (IpCidr::V4(c), IpAddr::V4(a)) => c.contains(a),
            (IpCidr::V6(c), IpAddr::V6(a)) => c.contains(a),
            _ => false,
        }
    }

    /// Does this prefix cover the whole of `other`?
    pub fn covers(&self, other: &IpCidr) -> bool {
        match (self, other) {
            (IpCidr::V4(a), IpCidr::V4(b)) => a.covers(b),
            (IpCidr::V6(a), IpCidr::V6(b)) => a.covers(b),
            _ => false,
        }
    }

    /// True if this is an IPv6 prefix.
    pub fn is_ipv6(&self) -> bool {
        matches!(self, IpCidr::V6(_))
    }
}

impl fmt::Display for IpCidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpCidr::V4(c) => c.fmt(f),
            IpCidr::V6(c) => c.fmt(f),
        }
    }
}

impl From<Ipv4Cidr> for IpCidr {
    fn from(c: Ipv4Cidr) -> Self {
        IpCidr::V4(c)
    }
}

impl From<Ipv6Cidr> for IpCidr {
    fn from(c: Ipv6Cidr) -> Self {
        IpCidr::V6(c)
    }
}

impl FromStr for IpCidr {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self> {
        if s.contains(':') {
            s.parse::<Ipv6Cidr>().map(IpCidr::V6)
        } else {
            s.parse::<Ipv4Cidr>().map(IpCidr::V4)
        }
    }
}

/// Serde support: prefixes serialize as their canonical CIDR string
/// (`"2001:db8:100::/48"`), which keeps the canonical-network invariant
/// through deserialization.
mod serde_impls {
    use super::{IpCidr, Ipv4Cidr, Ipv6Cidr};
    use serde::{de, Deserialize, Deserializer, Serialize, Serializer};

    macro_rules! string_serde {
        ($ty:ty) => {
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                    s.collect_str(self)
                }
            }
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                    let s = String::deserialize(d)?;
                    s.parse()
                        .map_err(|e| de::Error::custom(format!("{e}: {s}")))
                }
            }
        };
    }

    string_serde!(Ipv4Cidr);
    string_serde!(Ipv6Cidr);
    string_serde!(IpCidr);
}

fn mask_v4(prefix_len: u8) -> u32 {
    if prefix_len == 0 {
        0
    } else {
        u32::MAX << (32 - prefix_len)
    }
}

fn mask_v6(prefix_len: u8) -> u128 {
    if prefix_len == 0 {
        0
    } else {
        u128::MAX << (128 - prefix_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v4_canonicalizes_host_bits() {
        let c = Ipv4Cidr::new(Ipv4Addr::new(203, 0, 113, 77), 24).unwrap();
        assert_eq!(c.network(), Ipv4Addr::new(203, 0, 113, 0));
        assert_eq!(c.to_string(), "203.0.113.0/24");
        assert_eq!(c.broadcast(), Ipv4Addr::new(203, 0, 113, 255));
    }

    #[test]
    fn v4_contains_boundaries() {
        let c: Ipv4Cidr = "10.1.0.0/16".parse().unwrap();
        assert!(c.contains(Ipv4Addr::new(10, 1, 0, 0)));
        assert!(c.contains(Ipv4Addr::new(10, 1, 255, 255)));
        assert!(!c.contains(Ipv4Addr::new(10, 2, 0, 0)));
        assert!(!c.contains(Ipv4Addr::new(10, 0, 255, 255)));
    }

    #[test]
    fn v4_zero_and_full_prefix() {
        let any: Ipv4Cidr = "0.0.0.0/0".parse().unwrap();
        assert!(any.contains(Ipv4Addr::new(255, 255, 255, 255)));
        let host: Ipv4Cidr = "192.0.2.1/32".parse().unwrap();
        assert!(host.contains(Ipv4Addr::new(192, 0, 2, 1)));
        assert!(!host.contains(Ipv4Addr::new(192, 0, 2, 2)));
        assert!(host.split().is_none());
    }

    #[test]
    fn v4_invalid_prefix_len() {
        assert_eq!(
            Ipv4Cidr::new(Ipv4Addr::UNSPECIFIED, 33),
            Err(Error::PrefixLen)
        );
        assert!("10.0.0.0/33".parse::<Ipv4Cidr>().is_err());
        assert!("10.0.0.0".parse::<Ipv4Cidr>().is_err());
        assert!("10.0.0/8".parse::<Ipv4Cidr>().is_err());
    }

    #[test]
    fn v4_covers_and_overlaps() {
        let big: Ipv4Cidr = "10.0.0.0/8".parse().unwrap();
        let small: Ipv4Cidr = "10.5.0.0/16".parse().unwrap();
        let other: Ipv4Cidr = "11.0.0.0/8".parse().unwrap();
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(big.overlaps(&small) && small.overlaps(&big));
        assert!(!big.overlaps(&other));
        assert!(big.covers(&big));
    }

    #[test]
    fn v4_host_indexing() {
        let c: Ipv4Cidr = "198.51.100.0/30".parse().unwrap();
        assert_eq!(c.host(0), Some(Ipv4Addr::new(198, 51, 100, 0)));
        assert_eq!(c.host(3), Some(Ipv4Addr::new(198, 51, 100, 3)));
        assert_eq!(c.host(4), None);
    }

    #[test]
    fn v4_split() {
        let c: Ipv4Cidr = "10.0.0.0/8".parse().unwrap();
        let (lo, hi) = c.split().unwrap();
        assert_eq!(lo.to_string(), "10.0.0.0/9");
        assert_eq!(hi.to_string(), "10.128.0.0/9");
        assert!(c.covers(&lo) && c.covers(&hi));
        assert!(!lo.overlaps(&hi));
    }

    #[test]
    fn v6_canonicalizes_and_displays() {
        let c: Ipv6Cidr = "2001:db8:100::dead:beef/48".parse().unwrap();
        assert_eq!(c.to_string(), "2001:db8:100::/48");
        assert!(c.contains("2001:db8:100:ffff::1".parse().unwrap()));
        assert!(!c.contains("2001:db8:101::1".parse().unwrap()));
    }

    #[test]
    fn v6_subnet_carving() {
        // The Tango prototype carves per-path tunnel subnets out of a /48.
        let block: Ipv6Cidr = "2001:db8:100::/48".parse().unwrap();
        let t0 = block.subnet(64, 0).unwrap();
        let t1 = block.subnet(64, 1).unwrap();
        let t3 = block.subnet(64, 3).unwrap();
        assert_eq!(t0.to_string(), "2001:db8:100::/64");
        assert_eq!(t1.to_string(), "2001:db8:100:1::/64");
        assert_eq!(t3.to_string(), "2001:db8:100:3::/64");
        assert!(block.covers(&t3));
        assert!(!t0.overlaps(&t1));
    }

    #[test]
    fn v6_subnet_errors() {
        let block: Ipv6Cidr = "2001:db8:100::/48".parse().unwrap();
        assert_eq!(block.subnet(32, 0), Err(Error::PrefixLen)); // shorter than parent
        assert_eq!(block.subnet(129, 0), Err(Error::PrefixLen));
        assert!(block.subnet(49, 2).is_err()); // only 2 children at /49
        assert!(block.subnet(48, 1).is_err()); // same length: only index 0
        assert!(block.subnet(48, 0).is_ok());
    }

    #[test]
    fn v6_host_indexing_extremes() {
        let c: Ipv6Cidr = "::/0".parse().unwrap();
        assert!(c.host(u128::MAX).is_some());
        let host: Ipv6Cidr = "2001:db8::1/128".parse().unwrap();
        assert_eq!(host.host(0), Some("2001:db8::1".parse().unwrap()));
        assert_eq!(host.host(1), None);
    }

    #[test]
    fn ip_cidr_cross_family() {
        let v4: IpCidr = "10.0.0.0/8".parse().unwrap();
        let v6: IpCidr = "2001:db8::/32".parse().unwrap();
        assert!(!v4.contains("2001:db8::1".parse().unwrap()));
        assert!(!v6.contains("10.0.0.1".parse().unwrap()));
        assert!(!v4.covers(&v6));
        assert!(v6.is_ipv6() && !v4.is_ipv6());
    }
}
