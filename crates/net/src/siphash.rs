//! SipHash-2-4 — the keyed PRF behind Tango's authenticated telemetry.
//!
//! §6 of the paper: *"an attacker might try to inject, drop or modify
//! some of the packets used for measurements. In theory, the two Tango
//! end-points can use cryptography to protect the process... none of
//! [the existing work] facilitates the exchange of arbitrary measurement
//! information or is made to work under the resource constraints of
//! typical programmable switches."*
//!
//! SipHash-2-4 (Aumasson & Bernstein, 2012) is the natural fit the paper
//! alludes to: a 64-bit keyed MAC designed for short inputs, computable
//! with adds/rotates/xors only — the exact operation set a programmable
//! switch or eBPF program offers. Implemented from the specification;
//! verified against the reference test vectors below.
//!
//! This is a message-authentication code for *integrity*, not a general
//! cryptographic library: it protects Tango's measurement headers from
//! the §6 on-/off-path modification threat. Key distribution is out of
//! scope (the two cooperating edges share a secret out of band).

/// A 128-bit SipHash key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipKey {
    k0: u64,
    k1: u64,
}

impl SipKey {
    /// Construct from 16 little-endian key bytes.
    pub fn from_bytes(bytes: &[u8; 16]) -> Self {
        SipKey {
            k0: u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")),
            k1: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        }
    }

    /// Construct from two 64-bit words.
    pub fn from_words(k0: u64, k1: u64) -> Self {
        SipKey { k0, k1 }
    }
}

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// SipHash-2-4 of `data` under `key` (64-bit tag).
pub fn siphash24(key: &SipKey, data: &[u8]) -> u64 {
    let mut v = [
        key.k0 ^ 0x736f_6d65_7073_6575,
        key.k1 ^ 0x646f_7261_6e64_6f6d,
        key.k0 ^ 0x6c79_6765_6e65_7261,
        key.k1 ^ 0x7465_6462_7974_6573,
    ];
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }
    // Final block: remaining bytes plus the length in the top byte.
    let rem = chunks.remainder();
    let mut last = (data.len() as u64) << 56;
    for (i, &b) in rem.iter().enumerate() {
        last |= u64::from(b) << (8 * i);
    }
    v[3] ^= last;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= last;
    v[2] ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// Constant-time-ish tag comparison (single branch on the folded result,
/// so no early-exit timing channel over tag bytes).
pub fn tags_equal(a: u64, b: u64) -> bool {
    (a ^ b) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference test vectors from the SipHash paper's appendix
    /// (key = 00 01 02 ... 0f, messages = empty, 00, 00 01, ...).
    const VECTORS: [u64; 16] = [
        0x726f_db47_dd0e_0e31,
        0x74f8_39c5_93dc_67fd,
        0x0d6c_8009_d9a9_4f5a,
        0x8567_6696_d7fb_7e2d,
        0xcf27_94e0_2771_87b7,
        0x1876_5564_cd99_a68d,
        0xcbc9_466e_58fe_e3ce,
        0xab02_00f5_8b01_d137,
        0x93f5_f579_9a93_2462,
        0x9e00_82df_0ba9_e4b0,
        0x7a5d_bbc5_94dd_b9f3,
        0xf4b3_2f46_226b_ada7,
        0x751e_8fbc_860e_e5fb,
        0x14ea_5627_c084_3d90,
        0xf723_ca90_8e7a_f2ee,
        0xa129_ca61_49be_45e5,
    ];

    fn reference_key() -> SipKey {
        let mut k = [0u8; 16];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        SipKey::from_bytes(&k)
    }

    #[test]
    fn reference_vectors() {
        let key = reference_key();
        for (len, want) in VECTORS.iter().enumerate() {
            let msg: Vec<u8> = (0..len as u8).collect();
            assert_eq!(siphash24(&key, &msg), *want, "message length {len}");
        }
    }

    #[test]
    fn key_sensitivity() {
        let a = siphash24(&SipKey::from_words(1, 2), b"tango");
        let b = siphash24(&SipKey::from_words(1, 3), b"tango");
        let c = siphash24(&SipKey::from_words(2, 2), b"tango");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn message_sensitivity_every_bit() {
        let key = reference_key();
        let msg = [0x5au8; 28]; // one Tango header + seq-ish
        let base = siphash24(&key, &msg);
        for i in 0..msg.len() {
            for bit in 0..8 {
                let mut m = msg;
                m[i] ^= 1 << bit;
                assert_ne!(siphash24(&key, &m), base, "byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let key = SipKey::from_words(0xdead, 0xbeef);
        assert_eq!(siphash24(&key, b"abc"), siphash24(&key, b"abc"));
    }

    #[test]
    fn word_and_byte_constructors_agree() {
        let bytes: [u8; 16] = [
            1, 0, 0, 0, 0, 0, 0, 0, // k0 = 1 LE
            2, 0, 0, 0, 0, 0, 0, 0, // k1 = 2 LE
        ];
        assert_eq!(SipKey::from_bytes(&bytes), SipKey::from_words(1, 2));
    }

    #[test]
    fn tags_equal_works() {
        assert!(tags_equal(7, 7));
        assert!(!tags_equal(7, 8));
    }
}
