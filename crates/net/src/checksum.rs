//! The Internet checksum (RFC 1071) and the UDP pseudo-header variants.
//!
//! All Tango headers that carry checksums (IPv4, UDP) go through these
//! routines, so a single well-tested implementation covers the data plane.

use std::net::{Ipv4Addr, Ipv6Addr};

/// Incrementally computable RFC 1071 checksum state.
///
/// Sum data in any chunking with [`Checksum::add`]; the one's-complement
/// fold happens in [`Checksum::finish`]. Odd-length chunks are only correct
/// as the *final* chunk (standard restriction; the callers in this crate
/// respect it).
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Fresh state (sum = 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a byte slice to the running sum, big-endian 16-bit words.
    /// A trailing odd byte is padded with zero on the right.
    pub fn add(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for chunk in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Add a single 16-bit word.
    pub fn add_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Add a 32-bit value as two 16-bit words.
    pub fn add_u32(&mut self, value: u32) {
        self.add_u16((value >> 16) as u16);
        self.add_u16(value as u16);
    }

    /// Fold carries and return the one's-complement checksum.
    pub fn finish(self) -> u16 {
        let mut sum = self.sum;
        while sum > 0xffff {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// One-shot checksum of a contiguous buffer.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add(data);
    c.finish()
}

/// Verify that a buffer containing an embedded checksum sums to zero.
/// (A correct Internet checksum makes the whole region sum to `0xffff`
/// before complement, i.e. `checksum() == 0`.)
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

/// UDP/TCP pseudo-header sum for IPv4 (RFC 768).
pub fn pseudo_header_v4(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, length: u16) -> Checksum {
    let mut c = Checksum::new();
    c.add(&src.octets());
    c.add(&dst.octets());
    c.add_u16(u16::from(protocol));
    c.add_u16(length);
    c
}

/// UDP/TCP pseudo-header sum for IPv6 (RFC 8200 §8.1).
pub fn pseudo_header_v6(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, length: u32) -> Checksum {
    let mut c = Checksum::new();
    c.add(&src.octets());
    c.add(&dst.octets());
    c.add_u32(length);
    c.add_u32(u32::from(next_header));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic worked example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold -> 0xddf2
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_padded() {
        assert_eq!(checksum(&[0xab]), !0xab00);
        assert_eq!(checksum(&[0x12, 0x34, 0x56]), {
            let sum = 0x1234u32 + 0x5600;
            !((sum & 0xffff) as u16)
        });
    }

    #[test]
    fn empty_is_ffff() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn verify_detects_single_bit_flip() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11];
        let c = checksum(&data);
        data.extend_from_slice(&c.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn chunked_equals_oneshot() {
        let data: Vec<u8> = (0u16..200).map(|i| (i * 7 % 251) as u8).collect();
        let mut c = Checksum::new();
        c.add(&data[..100]);
        c.add(&data[100..]);
        assert_eq!(c.finish(), checksum(&data));
    }

    #[test]
    fn pseudo_header_v4_known_packet() {
        // Hand-built UDP packet: 1.2.3.4 -> 5.6.7.8, ports 1000 -> 2000,
        // payload "hi". Verify the full UDP checksum sums to zero.
        let src = Ipv4Addr::new(1, 2, 3, 4);
        let dst = Ipv4Addr::new(5, 6, 7, 8);
        let payload = b"hi";
        let udp_len = 8 + payload.len() as u16;
        let mut udp = vec![
            0x03,
            0xe8, // src port 1000
            0x07,
            0xd0, // dst port 2000
            0x00,
            udp_len as u8, // length
            0x00,
            0x00, // checksum placeholder
        ];
        udp.extend_from_slice(payload);
        let mut c = pseudo_header_v4(src, dst, 17, udp_len);
        c.add(&udp);
        let ck = c.finish();
        udp[6..8].copy_from_slice(&ck.to_be_bytes());
        let mut v = pseudo_header_v4(src, dst, 17, udp_len);
        v.add(&udp);
        assert_eq!(v.finish(), 0);
    }

    #[test]
    fn pseudo_header_v6_sums_to_zero_after_fill() {
        let src: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let dst: Ipv6Addr = "2001:db8::2".parse().unwrap();
        let payload = b"tango";
        let udp_len = 8 + payload.len() as u32;
        let mut udp = vec![0x04, 0x00, 0x08, 0x00, 0x00, udp_len as u8, 0x00, 0x00];
        udp.extend_from_slice(payload);
        let mut c = pseudo_header_v6(src, dst, 17, udp_len);
        c.add(&udp);
        let ck = c.finish();
        udp[6..8].copy_from_slice(&ck.to_be_bytes());
        let mut v = pseudo_header_v6(src, dst, 17, udp_len);
        v.add(&udp);
        assert_eq!(v.finish(), 0);
    }
}
