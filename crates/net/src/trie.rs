//! Longest-prefix-match trie.
//!
//! The Tango border switch keeps a table mapping destination host prefixes
//! to tunnel decisions ("when the border router sees traffic destined for
//! another Tango endpoint (based on a table...), it makes a
//! performance-driven routing decision", §3). This module provides the LPM
//! structure backing that table (and the simulator's core routing tables).
//!
//! Implementation: a binary (bit-at-a-time) trie per address family over
//! the 32/128-bit address space. Simple and robust over clever — a Tango
//! deployment holds at most a handful of prefixes per pairing, and the
//! simulator's core tables hold thousands, both far below the scale where
//! multibit tries would matter (measured in `tango-bench`).

use crate::cidr::{IpCidr, Ipv4Cidr, Ipv6Cidr};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

#[derive(Debug, Clone)]
struct BitTrie<V> {
    root: Node<V>,
    len: usize,
}

impl<V> Default for BitTrie<V> {
    fn default() -> Self {
        BitTrie {
            root: Node::default(),
            len: 0,
        }
    }
}

impl<V> BitTrie<V> {
    /// `bits` are MSB-first in a u128 whose top `width` bits are the address.
    fn insert(&mut self, bits: u128, prefix_len: u8, value: V) -> Option<V> {
        let mut node = &mut self.root;
        for i in 0..prefix_len {
            let bit = ((bits >> (127 - i)) & 1) as usize;
            node = node.children[bit].get_or_insert_with(Box::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn remove(&mut self, bits: u128, prefix_len: u8) -> Option<V> {
        let mut node = &mut self.root;
        for i in 0..prefix_len {
            let bit = ((bits >> (127 - i)) & 1) as usize;
            node = node.children[bit].as_deref_mut()?;
        }
        let old = node.value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    fn exact(&self, bits: u128, prefix_len: u8) -> Option<&V> {
        let mut node = &self.root;
        for i in 0..prefix_len {
            let bit = ((bits >> (127 - i)) & 1) as usize;
            node = node.children[bit].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Longest match walking down the full address width.
    fn longest(&self, bits: u128, width: u8) -> Option<(u8, &V)> {
        let mut node = &self.root;
        let mut best: Option<(u8, &V)> = None;
        if let Some(v) = node.value.as_ref() {
            best = Some((0, v));
        }
        for i in 0..width {
            let bit = ((bits >> (127 - i)) & 1) as usize;
            match node.children[bit].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best
    }

    fn collect<'a>(&'a self, out: &mut Vec<(u128, u8, &'a V)>) {
        fn walk<'a, V>(node: &'a Node<V>, bits: u128, depth: u8, out: &mut Vec<(u128, u8, &'a V)>) {
            if let Some(v) = node.value.as_ref() {
                out.push((bits, depth, v));
            }
            if let Some(c) = node.children[0].as_deref() {
                walk(c, bits, depth + 1, out);
            }
            if let Some(c) = node.children[1].as_deref() {
                walk(c, bits | (1u128 << (127 - depth)), depth + 1, out);
            }
        }
        walk(&self.root, 0, 0, out);
    }
}

/// A longest-prefix-match table from [`IpCidr`] keys to values.
///
/// IPv4 and IPv6 prefixes live in separate tries, so a v4 lookup can never
/// match a v6 prefix or vice versa.
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    v4: BitTrie<V>,
    v6: BitTrie<V>,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

fn v4_bits(addr: Ipv4Addr) -> u128 {
    (u128::from(u32::from(addr))) << 96
}

fn v6_bits(addr: Ipv6Addr) -> u128 {
    u128::from(addr)
}

impl<V> PrefixTrie<V> {
    /// An empty table.
    pub fn new() -> Self {
        PrefixTrie {
            v4: BitTrie::default(),
            v6: BitTrie::default(),
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.v4.len + self.v6.len
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a prefix → value mapping; returns the previous value if the
    /// exact prefix was already present.
    pub fn insert(&mut self, prefix: IpCidr, value: V) -> Option<V> {
        match prefix {
            IpCidr::V4(c) => self.v4.insert(v4_bits(c.network()), c.prefix_len(), value),
            IpCidr::V6(c) => self.v6.insert(v6_bits(c.network()), c.prefix_len(), value),
        }
    }

    /// Remove an exact prefix, returning its value.
    pub fn remove(&mut self, prefix: &IpCidr) -> Option<V> {
        match prefix {
            IpCidr::V4(c) => self.v4.remove(v4_bits(c.network()), c.prefix_len()),
            IpCidr::V6(c) => self.v6.remove(v6_bits(c.network()), c.prefix_len()),
        }
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &IpCidr) -> Option<&V> {
        match prefix {
            IpCidr::V4(c) => self.v4.exact(v4_bits(c.network()), c.prefix_len()),
            IpCidr::V6(c) => self.v6.exact(v6_bits(c.network()), c.prefix_len()),
        }
    }

    /// Longest-prefix match for an address: returns the matching prefix
    /// and its value, or `None` if no prefix covers the address.
    pub fn longest_match(&self, addr: IpAddr) -> Option<(IpCidr, &V)> {
        match addr {
            IpAddr::V4(a) => self.v4.longest(v4_bits(a), 32).map(|(len, v)| {
                let cidr = Ipv4Cidr::new(a, len).expect("len <= 32");
                (IpCidr::V4(cidr), v)
            }),
            IpAddr::V6(a) => self.v6.longest(v6_bits(a), 128).map(|(len, v)| {
                let cidr = Ipv6Cidr::new(a, len).expect("len <= 128");
                (IpCidr::V6(cidr), v)
            }),
        }
    }

    /// All stored (prefix, value) pairs, in trie order.
    pub fn iter(&self) -> Vec<(IpCidr, &V)> {
        let mut out = Vec::new();
        let mut raw = Vec::new();
        self.v4.collect(&mut raw);
        for (bits, len, v) in raw.drain(..) {
            let addr = Ipv4Addr::from((bits >> 96) as u32);
            out.push((IpCidr::V4(Ipv4Cidr::new(addr, len).expect("len <= 32")), v));
        }
        self.v6.collect(&mut raw);
        for (bits, len, v) in raw {
            let addr = Ipv6Addr::from(bits);
            out.push((IpCidr::V6(Ipv6Cidr::new(addr, len).expect("len <= 128")), v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> IpCidr {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn longest_match_prefers_longer() {
        let mut t = PrefixTrie::new();
        t.insert(cidr("10.0.0.0/8"), "eight");
        t.insert(cidr("10.1.0.0/16"), "sixteen");
        t.insert(cidr("10.1.2.0/24"), "twentyfour");
        let (p, v) = t.longest_match(addr("10.1.2.3")).unwrap();
        assert_eq!((p, *v), (cidr("10.1.2.0/24"), "twentyfour"));
        let (p, v) = t.longest_match(addr("10.1.9.9")).unwrap();
        assert_eq!((p, *v), (cidr("10.1.0.0/16"), "sixteen"));
        let (p, v) = t.longest_match(addr("10.200.0.1")).unwrap();
        assert_eq!((p, *v), (cidr("10.0.0.0/8"), "eight"));
        assert!(t.longest_match(addr("11.0.0.1")).is_none());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(cidr("0.0.0.0/0"), 1);
        t.insert(cidr("::/0"), 2);
        assert_eq!(*t.longest_match(addr("255.255.255.255")).unwrap().1, 1);
        assert_eq!(*t.longest_match(addr("8.8.8.8")).unwrap().1, 1);
        assert_eq!(*t.longest_match(addr("2001:db8::1")).unwrap().1, 2);
    }

    #[test]
    fn families_are_isolated() {
        let mut t = PrefixTrie::new();
        t.insert(cidr("0.0.0.0/0"), "v4");
        assert!(t.longest_match(addr("2001:db8::1")).is_none());
        t.insert(cidr("2001:db8::/32"), "v6");
        assert_eq!(*t.longest_match(addr("2001:db8::1")).unwrap().1, "v6");
        assert_eq!(*t.longest_match(addr("1.2.3.4")).unwrap().1, "v4");
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(cidr("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(cidr("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(*t.get(&cidr("10.0.0.0/8")).unwrap(), 2);
    }

    #[test]
    fn remove_works_and_reexposes_shorter() {
        let mut t = PrefixTrie::new();
        t.insert(cidr("10.0.0.0/8"), "short");
        t.insert(cidr("10.1.0.0/16"), "long");
        assert_eq!(t.remove(&cidr("10.1.0.0/16")), Some("long"));
        assert_eq!(t.remove(&cidr("10.1.0.0/16")), None);
        let (p, v) = t.longest_match(addr("10.1.2.3")).unwrap();
        assert_eq!((p, *v), (cidr("10.0.0.0/8"), "short"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn v6_tunnel_prefixes_resolve() {
        // The Tango scenario: four /48s, each a different wide-area path.
        let mut t = PrefixTrie::new();
        for (i, name) in ["ntt", "telia", "gtt", "cogent"].iter().enumerate() {
            let c: IpCidr = format!("2001:db8:{:x}::/48", 0x100 + i).parse().unwrap();
            t.insert(c, *name);
        }
        assert_eq!(*t.longest_match(addr("2001:db8:102::42")).unwrap().1, "gtt");
        assert_eq!(
            *t.longest_match(addr("2001:db8:103:ffff::1")).unwrap().1,
            "cogent"
        );
        assert!(t.longest_match(addr("2001:db8:104::1")).is_none());
    }

    #[test]
    fn host_routes() {
        let mut t = PrefixTrie::new();
        t.insert(cidr("192.0.2.1/32"), "host");
        t.insert(cidr("192.0.2.0/24"), "net");
        assert_eq!(*t.longest_match(addr("192.0.2.1")).unwrap().1, "host");
        assert_eq!(*t.longest_match(addr("192.0.2.2")).unwrap().1, "net");
    }

    #[test]
    fn iter_returns_all() {
        let mut t = PrefixTrie::new();
        let prefixes = ["10.0.0.0/8", "10.1.0.0/16", "2001:db8::/32", "0.0.0.0/0"];
        for (i, p) in prefixes.iter().enumerate() {
            t.insert(cidr(p), i);
        }
        let got = t.iter();
        assert_eq!(got.len(), 4);
        for (i, p) in prefixes.iter().enumerate() {
            assert!(got.iter().any(|(c, v)| *c == cidr(p) && **v == i));
        }
    }

    #[test]
    fn zero_len_prefix_lookup_on_empty_trie() {
        let t: PrefixTrie<u8> = PrefixTrie::new();
        assert!(t.longest_match(addr("0.0.0.0")).is_none());
        assert!(t.is_empty());
    }
}
