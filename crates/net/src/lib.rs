//! # tango-net — wire formats for the Tango data plane
//!
//! Byte-exact representations of every header the Tango data plane touches:
//! IPv4, IPv6, UDP, and the Tango tunnel header that carries the one-way
//! delay timestamp and per-tunnel sequence number described in §3/§4.2 of
//! *"It Takes Two to Tango: Cooperative Edge-to-Edge Routing"* (HotNets '22).
//!
//! The design follows the smoltcp idiom:
//!
//! * a zero-copy *view* type `XxxPacket<T: AsRef<[u8]>>` wrapping a buffer,
//!   with checked constructors and per-field accessors;
//! * an owned *representation* type `XxxRepr` that can be parsed from a view
//!   (`parse`) and serialized into one (`emit`).
//!
//! On top of the headers the crate provides CIDR prefix types
//! ([`Ipv4Cidr`], [`Ipv6Cidr`], [`IpCidr`]) and a longest-prefix-match
//! [`PrefixTrie`] used by the forwarding tables in `tango-dataplane`.
//!
//! ## Omitted features
//!
//! * IPv4 options and IPv6 extension headers are not parsed: a packet whose
//!   IHL exceeds 5 is rejected as [`Error::Unsupported`], matching the data
//!   plane a Tango switch would deploy (fixed-offset parsing).
//! * Fragmentation/reassembly: Tango tunnels are provisioned under the path
//!   MTU, so fragments are rejected rather than reassembled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod cidr;
mod error;
pub mod ipv4;
pub mod ipv6;
pub mod siphash;
pub mod tango_hdr;
pub mod trie;
pub mod udp;

pub use cidr::{IpCidr, Ipv4Cidr, Ipv6Cidr};
pub use error::{Error, Result};
pub use ipv4::{Ipv4Packet, Ipv4Repr};
pub use ipv6::{Ipv6Packet, Ipv6Repr};
pub use siphash::{siphash24, SipKey};
pub use tango_hdr::{
    TangoFlags, TangoPacket, TangoRepr, TANGO_HEADER_LEN, TANGO_MAGIC, TANGO_UDP_PORT,
};
pub use trie::PrefixTrie;
pub use udp::{UdpPacket, UdpRepr};

/// IP protocol numbers used by the Tango data plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum IpProtocol {
    /// ICMP (protocol 1). Probe traffic in the paper's prototype.
    Icmp = 1,
    /// TCP (protocol 6).
    Tcp = 6,
    /// UDP (protocol 17). Tango tunnels are IP+UDP encapsulated.
    Udp = 17,
    /// IPv6 encapsulated in IPv4/IPv6 (protocol 41).
    Ipv6 = 41,
    /// ICMPv6 (protocol 58).
    Icmpv6 = 58,
    /// IPv4 encapsulation (IP-in-IP, protocol 4).
    Ipv4 = 4,
}

impl IpProtocol {
    /// Decode a protocol number, returning `None` for protocols the Tango
    /// data plane does not understand.
    pub fn from_u8(value: u8) -> Option<Self> {
        match value {
            1 => Some(IpProtocol::Icmp),
            4 => Some(IpProtocol::Ipv4),
            6 => Some(IpProtocol::Tcp),
            17 => Some(IpProtocol::Udp),
            41 => Some(IpProtocol::Ipv6),
            58 => Some(IpProtocol::Icmpv6),
            _ => None,
        }
    }

    /// The wire value of this protocol.
    pub fn as_u8(self) -> u8 {
        self as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_roundtrip() {
        for p in [
            IpProtocol::Icmp,
            IpProtocol::Tcp,
            IpProtocol::Udp,
            IpProtocol::Ipv6,
            IpProtocol::Icmpv6,
            IpProtocol::Ipv4,
        ] {
            assert_eq!(IpProtocol::from_u8(p.as_u8()), Some(p));
        }
    }

    #[test]
    fn protocol_unknown_rejected() {
        assert_eq!(IpProtocol::from_u8(0), None);
        assert_eq!(IpProtocol::from_u8(255), None);
        assert_eq!(IpProtocol::from_u8(89), None); // OSPF: not data-plane relevant
    }
}
