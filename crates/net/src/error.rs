use core::fmt;

/// Errors produced while parsing or emitting wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The buffer is too short to hold the header (or the length field
    /// claims more data than the buffer provides).
    Truncated,
    /// A checksum did not verify.
    Checksum,
    /// A field holds a value that is structurally invalid (e.g. IP version
    /// mismatch, UDP length shorter than its own header).
    Malformed,
    /// The packet is valid but uses a feature the Tango data plane does not
    /// implement (IPv4 options, fragments, extension headers).
    Unsupported,
    /// A Tango header had the wrong magic or an unknown version.
    NotTango,
    /// A prefix length was out of range for the address family.
    PrefixLen,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated => write!(f, "buffer too short for header"),
            Error::Checksum => write!(f, "checksum mismatch"),
            Error::Malformed => write!(f, "structurally invalid field"),
            Error::Unsupported => write!(f, "unsupported feature (options/fragments/ext headers)"),
            Error::NotTango => write!(f, "not a Tango tunnel header"),
            Error::PrefixLen => write!(f, "prefix length out of range"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias for results in this crate.
pub type Result<T> = core::result::Result<T, Error>;
