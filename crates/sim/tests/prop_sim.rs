//! Property-based tests for simulator primitives: clocks and flow
//! hashing.

use proptest::prelude::*;
use tango_net::{Ipv6Packet, Ipv6Repr, UdpPacket, UdpRepr};
use tango_sim::hash::flow_hash;
use tango_sim::{NodeClock, SimTime};

fn udp6(src: u128, dst: u128, sport: u16, dport: u16, payload: &[u8]) -> Vec<u8> {
    let udp = UdpRepr { src_port: sport, dst_port: dport, payload_len: payload.len() };
    let ip = Ipv6Repr {
        src_addr: src.into(),
        dst_addr: dst.into(),
        next_header: 17,
        payload_len: udp.total_len(),
        hop_limit: 64,
        traffic_class: 0,
        flow_label: 0,
    };
    let mut buf = vec![0u8; ip.total_len()];
    let mut p = Ipv6Packet::new_unchecked(&mut buf[..]);
    ip.emit(&mut p).unwrap();
    let mut u = UdpPacket::new_unchecked(p.payload_mut());
    udp.emit(&mut u).unwrap();
    u.payload_mut().copy_from_slice(payload);
    buf
}

proptest! {
    #[test]
    fn clock_elapsed_time_is_offset_invariant(
        offset in -1_000_000_000i64..1_000_000_000,
        t1 in 2_000_000_000u64..1_000_000_000_000,
        dt in 0u64..1_000_000_000,
    ) {
        // For any constant offset, elapsed local time equals elapsed sim
        // time (once clear of the zero-saturation region) — the §4.2
        // invariant the whole measurement design rests on.
        let c = NodeClock::with_offset_ns(offset);
        let a = c.local_ns(SimTime(t1));
        let b = c.local_ns(SimTime(t1 + dt));
        prop_assert_eq!(b - a, dt);
    }

    #[test]
    fn clock_offset_shifts_absolute_reading(
        offset in 0i64..1_000_000_000,
        t in 0u64..1_000_000_000_000,
    ) {
        let sync = NodeClock::synchronized();
        let skewed = NodeClock::with_offset_ns(offset);
        prop_assert_eq!(
            skewed.local_ns(SimTime(t)) as i64 - sync.local_ns(SimTime(t)) as i64,
            offset
        );
    }

    #[test]
    fn drift_grows_linearly(
        ppm in 0.0f64..500.0,
        t in 1_000_000u64..1_000_000_000_000,
    ) {
        let c = NodeClock::with_offset_and_drift(0, ppm);
        let local = c.local_ns(SimTime(t));
        let expected = t as f64 * (1.0 + ppm / 1e6);
        prop_assert!((local as f64 - expected).abs() < 2.0, "{local} vs {expected}");
    }

    #[test]
    fn flow_hash_ignores_payload(
        src in any::<u128>(),
        dst in any::<u128>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        pay_a in proptest::collection::vec(any::<u8>(), 0..64),
        pay_b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let a = flow_hash(&udp6(src, dst, sport, dport, &pay_a));
        let b = flow_hash(&udp6(src, dst, sport, dport, &pay_b));
        prop_assert_eq!(a, b, "same 5-tuple must hash identically");
    }

    #[test]
    fn flow_hash_separates_tuples(
        src in any::<u128>(),
        dst in any::<u128>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
    ) {
        let base = flow_hash(&udp6(src, dst, sport, dport, b"x"));
        let other = flow_hash(&udp6(src, dst, sport.wrapping_add(1), dport, b"x"));
        // Not a cryptographic guarantee, but FNV over distinct keys
        // colliding would break the ECMP model; accept with a tiny
        // collision budget by checking inequality (FNV-1a collisions on
        // 64-bit outputs for 14-byte keys are ~2^-64 per pair).
        prop_assert_ne!(base, other);
    }

    #[test]
    fn simtime_arithmetic_consistent(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (ta, tb) = (SimTime(a), SimTime(b));
        prop_assert_eq!((ta + tb).as_ns(), a + b);
        if a >= b {
            prop_assert_eq!((ta - tb).as_ns(), a - b);
        }
        prop_assert_eq!(ta.saturating_sub(tb).as_ns(), a.saturating_sub(b));
    }
}
