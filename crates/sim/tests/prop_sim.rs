//! Property-based tests for simulator primitives: clocks and flow
//! hashing.

use proptest::prelude::*;
use tango_net::{Ipv6Packet, Ipv6Repr, UdpPacket, UdpRepr};
use tango_sim::hash::flow_hash;
use tango_sim::{NodeClock, SimTime};

fn udp6(src: u128, dst: u128, sport: u16, dport: u16, payload: &[u8]) -> Vec<u8> {
    let udp = UdpRepr {
        src_port: sport,
        dst_port: dport,
        payload_len: payload.len(),
    };
    let ip = Ipv6Repr {
        src_addr: src.into(),
        dst_addr: dst.into(),
        next_header: 17,
        payload_len: udp.total_len(),
        hop_limit: 64,
        traffic_class: 0,
        flow_label: 0,
    };
    let mut buf = vec![0u8; ip.total_len()];
    let mut p = Ipv6Packet::new_unchecked(&mut buf[..]);
    ip.emit(&mut p).unwrap();
    let mut u = UdpPacket::new_unchecked(p.payload_mut());
    udp.emit(&mut u).unwrap();
    u.payload_mut().copy_from_slice(payload);
    buf
}

proptest! {
    #[test]
    fn clock_elapsed_time_is_offset_invariant(
        offset in -1_000_000_000i64..1_000_000_000,
        t1 in 2_000_000_000u64..1_000_000_000_000,
        dt in 0u64..1_000_000_000,
    ) {
        // For any constant offset, elapsed local time equals elapsed sim
        // time (once clear of the zero-saturation region) — the §4.2
        // invariant the whole measurement design rests on.
        let c = NodeClock::with_offset_ns(offset);
        let a = c.local_ns(SimTime(t1));
        let b = c.local_ns(SimTime(t1 + dt));
        prop_assert_eq!(b - a, dt);
    }

    #[test]
    fn clock_offset_shifts_absolute_reading(
        offset in 0i64..1_000_000_000,
        t in 0u64..1_000_000_000_000,
    ) {
        let sync = NodeClock::synchronized();
        let skewed = NodeClock::with_offset_ns(offset);
        prop_assert_eq!(
            skewed.local_ns(SimTime(t)) as i64 - sync.local_ns(SimTime(t)) as i64,
            offset
        );
    }

    #[test]
    fn drift_grows_linearly(
        ppm in 0.0f64..500.0,
        t in 1_000_000u64..1_000_000_000_000,
    ) {
        let c = NodeClock::with_offset_and_drift(0, ppm);
        let local = c.local_ns(SimTime(t));
        let expected = t as f64 * (1.0 + ppm / 1e6);
        prop_assert!((local as f64 - expected).abs() < 2.0, "{local} vs {expected}");
    }

    #[test]
    fn flow_hash_ignores_payload(
        src in any::<u128>(),
        dst in any::<u128>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        pay_a in proptest::collection::vec(any::<u8>(), 0..64),
        pay_b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let a = flow_hash(&udp6(src, dst, sport, dport, &pay_a));
        let b = flow_hash(&udp6(src, dst, sport, dport, &pay_b));
        prop_assert_eq!(a, b, "same 5-tuple must hash identically");
    }

    #[test]
    fn flow_hash_separates_tuples(
        src in any::<u128>(),
        dst in any::<u128>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
    ) {
        let base = flow_hash(&udp6(src, dst, sport, dport, b"x"));
        let other = flow_hash(&udp6(src, dst, sport.wrapping_add(1), dport, b"x"));
        // Not a cryptographic guarantee, but FNV over distinct keys
        // colliding would break the ECMP model; accept with a tiny
        // collision budget by checking inequality (FNV-1a collisions on
        // 64-bit outputs for 14-byte keys are ~2^-64 per pair).
        prop_assert_ne!(base, other);
    }

    #[test]
    fn simtime_arithmetic_consistent(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (ta, tb) = (SimTime(a), SimTime(b));
        prop_assert_eq!((ta + tb).as_ns(), a + b);
        if a >= b {
            prop_assert_eq!((ta - tb).as_ns(), a - b);
        }
        prop_assert_eq!(ta.saturating_sub(tb).as_ns(), a.saturating_sub(b));
    }
}

// ---------------------------------------------------------------------
// Fault-injection properties (the robustness substrate the path-health
// experiments stand on).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tango_sim::{FaultDecision, FaultInjector};

proptest! {
    #[test]
    fn fault_rates_always_clamp_to_unit_interval(
        drop in -10.0f64..10.0,
        corrupt in -10.0f64..10.0,
    ) {
        let f = FaultInjector::new(drop, corrupt);
        prop_assert!((0.0..=1.0).contains(&f.drop_chance), "drop {}", f.drop_chance);
        prop_assert!((0.0..=1.0).contains(&f.corrupt_chance), "corrupt {}", f.corrupt_chance);
    }

    #[test]
    fn certain_drop_always_drops(
        seed in any::<u64>(),
        corrupt in 0.0f64..1.0,
        len in 0usize..64,
    ) {
        // drop_chance = 1.0 must drop every packet regardless of the
        // rng state, the corruption rate, or the packet size.
        let f = FaultInjector::new(1.0, corrupt);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bytes = vec![0u8; len];
        for _ in 0..16 {
            prop_assert_eq!(f.apply(&mut rng, &mut bytes), FaultDecision::Drop);
        }
    }

    #[test]
    fn same_seed_same_decision_sequence(
        seed in any::<u64>(),
        drop in 0.0f64..1.0,
        corrupt in 0.0f64..1.0,
    ) {
        // Determinism: the whole simulator's reproducibility contract
        // rests on the injector consuming rng state identically.
        let f = FaultInjector::new(drop, corrupt);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64)
                .map(|_| {
                    let mut b = [0x5au8; 16];
                    (f.apply(&mut rng, &mut b), b)
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn decisions_never_lie_about_the_buffer(
        seed in any::<u64>(),
        drop in 0.0f64..1.0,
        corrupt in 0.0f64..1.0,
        orig in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // Pass/Drop leave the bytes untouched; Corrupted flips exactly
        // one bit.
        let f = FaultInjector::new(drop, corrupt);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = orig.clone();
        let flipped_bits = |a: &[u8], c: &[u8]| -> u32 {
            a.iter().zip(c).map(|(x, y)| (x ^ y).count_ones()).sum()
        };
        match f.apply(&mut rng, &mut b) {
            FaultDecision::Corrupted => prop_assert_eq!(flipped_bits(&orig, &b), 1),
            FaultDecision::Pass | FaultDecision::Drop => prop_assert_eq!(&orig, &b),
        }
    }
}
