//! Property-based tests for the chaos machinery: outage-window
//! normalization in `sim::fault` and `ChaosSchedule` determinism.

use proptest::prelude::*;
use tango_sim::{ChaosConfig, ChaosSchedule, OutageSchedule};

proptest! {
    /// However windows overlap or abut, the normalized form is sorted,
    /// disjoint, and non-adjacent, and membership matches the naive
    /// union of the raw windows.
    #[test]
    fn outage_normalization_preserves_membership(
        raw in proptest::collection::vec((0u64..500, 1u64..100), 0..24),
        probes in proptest::collection::vec(0u64..700, 32),
    ) {
        let mut o = OutageSchedule::new();
        for &(from, len) in &raw {
            o.add(0, from, from + len);
        }
        // Normal form: sorted, disjoint, with a real gap between
        // neighbors (adjacent windows must have merged).
        let w = o.windows(0);
        for pair in w.windows(2) {
            prop_assert!(pair[0].1 < pair[1].0,
                "windows {:?} not disjoint/non-adjacent", pair);
        }
        for &(a, b) in w {
            prop_assert!(a < b);
        }
        // Membership agrees with the naive union of raw windows.
        for &t in &probes {
            let naive = raw.iter().any(|&(from, len)| t >= from && t < from + len);
            prop_assert_eq!(o.active(0, t), naive, "t = {}", t);
        }
        // all_clear is the max end (or 0 when empty).
        let naive_clear = raw.iter().map(|&(f, l)| f + l).max().unwrap_or(0);
        if raw.is_empty() {
            prop_assert_eq!(o.all_clear_ns(), 0);
        } else {
            prop_assert_eq!(o.all_clear_ns(), naive_clear);
        }
    }

    /// Insertion order never matters.
    #[test]
    fn outage_insertion_order_irrelevant(
        raw in proptest::collection::vec((0u64..500, 1u64..100), 1..16),
    ) {
        let mut fwd = OutageSchedule::new();
        let mut rev = OutageSchedule::new();
        for &(f, l) in &raw {
            fwd.add(3, f, f + l);
        }
        for &(f, l) in raw.iter().rev() {
            rev.add(3, f, f + l);
        }
        prop_assert_eq!(fwd, rev);
    }

    /// Same seed ⇒ identical schedule, different seed ⇒ (almost
    /// always) different — and the schedule always respects its bounds.
    #[test]
    fn chaos_schedule_is_pure_and_bounded(
        seed in any::<u64>(),
        events in 1usize..32,
        n_paths in 1u16..8,
        byzantine in any::<bool>(),
    ) {
        let cfg = ChaosConfig {
            seed,
            start_ns: 1_000_000_000,
            storm_ns: 60_000_000_000,
            n_paths,
            events,
            byzantine,
        };
        let a = ChaosSchedule::generate(cfg);
        let b = ChaosSchedule::generate(cfg);
        prop_assert_eq!(&a, &b, "same config must reproduce exactly");
        prop_assert_eq!(a.events.len(), events);
        let mut last = 0u64;
        for e in &a.events {
            prop_assert!(e.at.0 >= last, "events must be time-sorted");
            last = e.at.0;
            prop_assert!(e.kind.path() < n_paths);
            prop_assert!(e.at.0 >= cfg.start_ns);
            prop_assert!(
                e.at.0 + e.kind.duration_ns() <= cfg.start_ns + cfg.storm_ns,
                "event must end inside the storm"
            );
            if !byzantine {
                prop_assert!(!e.kind.is_byzantine());
            }
        }
    }
}
