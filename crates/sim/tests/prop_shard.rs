//! Property-based equivalence of the sharded engine (DESIGN.md §11):
//! for random small topologies, workloads, and seeds, running the same
//! simulation under 1 shard, N shards serial, and N shards threaded
//! produces identical `SimStats`, identical canonical traces, and an
//! identical observability export.
//!
//! The agents here are deliberately rng-hungry relays — every delivery
//! draws from the node's stream to pick the next hop — so any slip in
//! the per-node RNG derivation, the conservative window math, or the
//! barrier merge order shows up as a diverging trace within a few hops.

use proptest::prelude::*;
use rand::Rng;
use tango_obs::Registry;
use tango_sim::{
    Agent, Ctx, NetworkSim, Packet, ShardMode, SimConfig, SimStats, SimTime, TraceEvent,
};
use tango_topology::{AsId, AsKind, AsNode, DirectionProfile, JitterModel, LinkProfile, Topology};

/// First AS id; nodes are `BASE_ID..BASE_ID + n`.
const BASE_ID: u32 = 100;

/// One generated world: a ring of `n` nodes (always connected) plus
/// random chords, each hop with its own delay and optional jitter.
/// Node indices are generated in `0..8` and reduced modulo `n` at build
/// time (the vendored proptest has no `prop_flat_map` to make the
/// ranges depend on `n`).
#[derive(Debug, Clone)]
struct World {
    n: usize,
    chords: Vec<(usize, usize)>,
    delays_ns: Vec<u64>,
    jitter: Vec<bool>,
    /// (at_ms, source node index, hop budget, payload byte)
    injections: Vec<(u64, usize, u8, u8)>,
    /// (at_ms, node index, timer tag)
    timers: Vec<(u64, usize, u64)>,
}

fn world_strategy() -> impl Strategy<Value = World> {
    (
        3usize..=8,
        proptest::collection::vec((0usize..8, 0usize..8), 0..5),
        proptest::collection::vec(200_000u64..4_000_000, 16),
        proptest::collection::vec(any::<bool>(), 16),
        proptest::collection::vec((1u64..40, 0usize..8, 1u8..5, any::<u8>()), 1..10),
        proptest::collection::vec((1u64..40, 0usize..8, any::<u64>()), 0..6),
    )
        .prop_map(|(n, chords, delays_ns, jitter, injections, timers)| World {
            n,
            chords,
            delays_ns,
            jitter,
            injections,
            timers,
        })
}

fn build_topology(w: &World) -> Topology {
    let mut t = Topology::new();
    for i in 0..w.n {
        t.add_node(AsNode::new(
            BASE_ID + i as u32,
            AsKind::Transit,
            format!("n{i}"),
        ))
        .expect("ids unique");
    }
    let mut edge = 0usize;
    let profile = |edge: usize| {
        let mut p = DirectionProfile::constant(w.delays_ns[edge % w.delays_ns.len()]);
        if w.jitter[edge % w.jitter.len()] {
            p = p.with_jitter(JitterModel::Uniform { range_ns: 100_000 });
        }
        LinkProfile::symmetric(p)
    };
    for i in 0..w.n {
        let j = (i + 1) % w.n;
        if t.add_peering(
            AsId(BASE_ID + i as u32),
            AsId(BASE_ID + j as u32),
            profile(edge),
        )
        .is_ok()
        {
            edge += 1;
        }
    }
    for &(a, b) in &w.chords {
        let (a, b) = (a % w.n, b % w.n);
        if a == b {
            continue;
        }
        // Duplicate edges are rejected by the topology; skipping them
        // keeps the generator simple without losing cases.
        if t.add_peering(
            AsId(BASE_ID + a as u32),
            AsId(BASE_ID + b as u32),
            profile(edge),
        )
        .is_ok()
        {
            edge += 1;
        }
    }
    t
}

/// Forwards every arriving packet to a random neighbor until its hop
/// budget (payload byte 0) runs out; timers also launch fresh packets.
/// Every decision consumes node-local rng, which is exactly what the
/// equivalence property needs to stress.
struct RelayAgent {
    neighbors: Vec<AsId>,
}

impl RelayAgent {
    fn hop(&self, ctx: &mut Ctx<'_>, mut pkt: Packet) {
        let Some(&budget) = pkt.bytes().first() else {
            return;
        };
        if budget == 0 || self.neighbors.is_empty() {
            return;
        }
        let next = self.neighbors[ctx.rng().gen_range(0..self.neighbors.len())];
        pkt.bytes_mut()[0] = budget - 1;
        ctx.transmit(next, pkt);
    }
}

impl Agent for RelayAgent {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        self.hop(ctx, pkt);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        let budget = (tag % 4) as u8 + 1;
        self.hop(ctx, Packet::new(vec![budget, (tag >> 8) as u8]));
    }
}

fn run(
    w: &World,
    seed: u64,
    shards: usize,
    mode: ShardMode,
) -> (SimStats, Vec<TraceEvent>, String) {
    let topology = build_topology(w);
    let registry = Registry::default();
    let mut sim = NetworkSim::new(
        topology.clone(),
        SimConfig {
            seed,
            trace_capacity: 1 << 14,
            shards,
            shard_mode: mode,
            obs: Some(registry.clone()),
            ..SimConfig::default()
        },
    );
    for node in topology.nodes() {
        let neighbors = topology.neighbors(node.id).to_vec();
        sim.set_agent(node.id, Box::new(RelayAgent { neighbors }));
    }
    for &(at_ms, src, budget, payload) in &w.injections {
        sim.schedule_host_packet(
            SimTime::from_ms(at_ms),
            AsId(BASE_ID + (src % w.n) as u32),
            Packet::new(vec![budget, payload]),
        );
    }
    for &(at_ms, node, tag) in &w.timers {
        sim.schedule_timer_at(
            SimTime::from_ms(at_ms),
            AsId(BASE_ID + (node % w.n) as u32),
            tag,
        );
    }
    sim.run_until(SimTime::from_ms(200));
    (
        *sim.stats(),
        sim.tracer().events(),
        registry.snapshot().to_json(),
    )
}

proptest! {
    /// The tentpole property: shard count and execution mode are
    /// unobservable. Stats, trace, and telemetry are bit-identical.
    #[test]
    fn sharding_is_unobservable(
        w in world_strategy(),
        seed in any::<u64>(),
        shards in 2usize..=4,
    ) {
        let (stats1, trace1, obs1) = run(&w, seed, 1, ShardMode::Serial);
        let (stats_s, trace_s, obs_s) = run(&w, seed, shards, ShardMode::Serial);
        let (stats_t, trace_t, obs_t) = run(&w, seed, shards, ShardMode::Threaded);

        prop_assert_eq!(stats1, stats_s, "serial multi-shard stats diverged");
        prop_assert_eq!(stats1, stats_t, "threaded multi-shard stats diverged");
        prop_assert_eq!(&trace1, &trace_s, "serial multi-shard trace diverged");
        prop_assert_eq!(&trace1, &trace_t, "threaded multi-shard trace diverged");
        prop_assert_eq!(&obs1, &obs_s, "serial multi-shard telemetry diverged");
        prop_assert_eq!(&obs1, &obs_t, "threaded multi-shard telemetry diverged");
    }

    /// Re-running the same world with the same seed and shard count is
    /// bit-identical too (no hidden global state across runs).
    #[test]
    fn repeat_runs_are_reproducible(
        w in world_strategy(),
        seed in any::<u64>(),
        shards in 1usize..=3,
    ) {
        let a = run(&w, seed, shards, ShardMode::Serial);
        let b = run(&w, seed, shards, ShardMode::Serial);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }
}
