//! Seeded chaos storms: deterministic randomized schedules mixing
//! honest faults with Byzantine behaviors.
//!
//! A [`ChaosSchedule`] is a *pure function of its config* — the same
//! seed always yields the same event list, independent of worker
//! threads, wall time, or anything else outside the config. The
//! schedule speaks the operator vocabulary (paths, windows); the
//! pairing harness in `tango-core` lowers honest events to
//! `WideAreaEvent`s and Byzantine events to [`crate::adversary`]
//! installations and BGP attacks.

use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What kind of havoc one chaos event wreaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Honest: one path silently drops everything for the duration.
    Blackhole {
        /// Provisioned path id.
        path: u16,
        /// Outage length, ns.
        duration_ns: u64,
    },
    /// Honest: the path's tunnel prefixes are withdrawn, then
    /// re-announced after the hold.
    SessionReset {
        /// Provisioned path id.
        path: u16,
        /// Withdrawal hold, ns.
        hold_ns: u64,
    },
    /// Byzantine: a transit AS on the path skews piggybacked timestamps.
    OwdPoison {
        /// Path whose distinguishing transit turns Byzantine.
        path: u16,
        /// Poisoning window length, ns.
        duration_ns: u64,
        /// Timestamp skew, ns (negative = path claims to be faster).
        skew_ns: i64,
    },
    /// Byzantine: a transit AS records and replays tunnel packets.
    Replay {
        /// Path whose distinguishing transit turns Byzantine.
        path: u16,
        /// Capture window length, ns.
        duration_ns: u64,
        /// Re-injection delay, ns.
        delay_ns: u64,
        /// Capture cadence (every n-th Tango packet).
        every: u32,
    },
    /// Byzantine: a transit AS injects forged measurement reports.
    SpoofReports {
        /// Path whose distinguishing transit turns Byzantine.
        path: u16,
        /// Injection window length, ns.
        duration_ns: u64,
        /// Injection period, ns.
        period_ns: u64,
    },
    /// Byzantine control plane: an AS announces a more-specific of the
    /// victim path's tunnel prefix, attracting its traffic until the
    /// hijack is withdrawn.
    Hijack {
        /// Path whose tunnel prefix is hijacked.
        path: u16,
        /// How long the hijack announcement stays up, ns.
        duration_ns: u64,
    },
}

impl ChaosKind {
    /// The path this event targets.
    pub fn path(&self) -> u16 {
        match *self {
            ChaosKind::Blackhole { path, .. }
            | ChaosKind::SessionReset { path, .. }
            | ChaosKind::OwdPoison { path, .. }
            | ChaosKind::Replay { path, .. }
            | ChaosKind::SpoofReports { path, .. }
            | ChaosKind::Hijack { path, .. } => path,
        }
    }

    /// Does this event make the target path unusable while active
    /// (as opposed to merely lying about it)?
    pub fn is_outage(&self) -> bool {
        matches!(
            self,
            ChaosKind::Blackhole { .. } | ChaosKind::SessionReset { .. } | ChaosKind::Hijack { .. }
        )
    }

    /// Is this a Byzantine (lying) behavior rather than an honest fault?
    pub fn is_byzantine(&self) -> bool {
        !matches!(
            self,
            ChaosKind::Blackhole { .. } | ChaosKind::SessionReset { .. }
        )
    }

    /// How long the event stays active, ns.
    pub fn duration_ns(&self) -> u64 {
        match *self {
            ChaosKind::Blackhole { duration_ns, .. }
            | ChaosKind::OwdPoison { duration_ns, .. }
            | ChaosKind::Replay { duration_ns, .. }
            | ChaosKind::SpoofReports { duration_ns, .. }
            | ChaosKind::Hijack { duration_ns, .. } => duration_ns,
            ChaosKind::SessionReset { hold_ns, .. } => hold_ns,
        }
    }
}

/// One scheduled chaos event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// When the event starts.
    pub at: SimTime,
    /// What happens.
    pub kind: ChaosKind,
}

/// Storm shape: where the storm sits in the run and what it may draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Schedule seed — the *only* source of randomness.
    pub seed: u64,
    /// First instant an event may start, ns.
    pub start_ns: u64,
    /// Storm length: every event *ends* before `start_ns + storm_ns`.
    pub storm_ns: u64,
    /// Number of provisioned paths events may target.
    pub n_paths: u16,
    /// How many events to draw.
    pub events: usize,
    /// Include Byzantine kinds (false = honest-faults-only storm).
    pub byzantine: bool,
}

/// A generated, deterministic storm schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSchedule {
    /// The config that generated it (kept for artifact provenance).
    pub config: ChaosConfig,
    /// Events sorted by start time (ties broken by draw order).
    pub events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// Generate the schedule for `config`. Pure: same config → same
    /// schedule, on any machine, any thread count.
    pub fn generate(config: ChaosConfig) -> Self {
        assert!(config.n_paths > 0, "need at least one path");
        assert!(config.storm_ns > 0, "storm must have positive length");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut events = Vec::with_capacity(config.events);
        // Durations span 50 ms .. 1/4 of the storm, so several events
        // overlap in a typical storm but none dominates it.
        let max_dur = (config.storm_ns / 4).max(100_000_000);
        for _ in 0..config.events {
            let duration_ns = rng.gen_range(50_000_000..=max_dur);
            // Start early enough that the event ends inside the storm.
            let latest = config.storm_ns.saturating_sub(duration_ns).max(1);
            let at = SimTime(config.start_ns + rng.gen_range(0..latest));
            let path = rng.gen_range(0..config.n_paths);
            let kinds = if config.byzantine { 6 } else { 2 };
            let kind = match rng.gen_range(0..kinds) {
                0 => ChaosKind::Blackhole { path, duration_ns },
                1 => ChaosKind::SessionReset {
                    path,
                    hold_ns: duration_ns,
                },
                2 => ChaosKind::OwdPoison {
                    path,
                    duration_ns,
                    // ±(50..500) ms — far beyond honest jitter either way.
                    skew_ns: if rng.gen_bool(0.5) { 1 } else { -1 }
                        * rng.gen_range(50_000_000i64..500_000_000),
                },
                3 => ChaosKind::Replay {
                    path,
                    duration_ns,
                    delay_ns: rng.gen_range(20_000_000..200_000_000),
                    every: rng.gen_range(1..4),
                },
                4 => ChaosKind::SpoofReports {
                    path,
                    duration_ns,
                    period_ns: rng.gen_range(5_000_000..50_000_000),
                },
                _ => ChaosKind::Hijack { path, duration_ns },
            };
            events.push(ChaosEvent { at, kind });
        }
        events.sort_by_key(|e| e.at);
        ChaosSchedule { config, events }
    }

    /// When the last event is over (storm guaranteed quiet after this).
    pub fn quiet_after(&self) -> SimTime {
        self.events
            .iter()
            .map(|e| SimTime(e.at.0.saturating_add(e.kind.duration_ns())))
            .max()
            .unwrap_or(SimTime(self.config.start_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            start_ns: 1_000_000_000,
            storm_ns: 60_000_000_000,
            n_paths: 4,
            events: 12,
            byzantine: true,
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        assert_eq!(
            ChaosSchedule::generate(cfg(7)),
            ChaosSchedule::generate(cfg(7))
        );
    }

    #[test]
    fn different_seed_different_schedule() {
        assert_ne!(
            ChaosSchedule::generate(cfg(7)).events,
            ChaosSchedule::generate(cfg(8)).events
        );
    }

    #[test]
    fn events_sorted_and_inside_storm() {
        let s = ChaosSchedule::generate(cfg(42));
        assert_eq!(s.events.len(), 12);
        let mut last = SimTime::ZERO;
        for e in &s.events {
            assert!(e.at >= last);
            last = e.at;
            assert!(e.at.0 >= s.config.start_ns);
            let end = e.at.0 + e.kind.duration_ns();
            assert!(
                end <= s.config.start_ns + s.config.storm_ns,
                "event ends at {end} outside the storm"
            );
        }
        assert!(s.quiet_after().0 <= s.config.start_ns + s.config.storm_ns);
    }

    #[test]
    fn honest_storm_has_no_byzantine_kinds() {
        let mut c = cfg(9);
        c.byzantine = false;
        let s = ChaosSchedule::generate(c);
        assert!(s.events.iter().all(|e| !e.kind.is_byzantine()));
    }

    #[test]
    fn byzantine_storm_eventually_draws_byzantine_kinds() {
        let mut c = cfg(3);
        c.events = 64;
        let s = ChaosSchedule::generate(c);
        assert!(s.events.iter().any(|e| e.kind.is_byzantine()));
        assert!(s.events.iter().any(|e| !e.kind.is_byzantine()));
    }

    #[test]
    fn paths_stay_in_range() {
        let s = ChaosSchedule::generate(cfg(123));
        assert!(s.events.iter().all(|e| e.kind.path() < 4));
    }
}
