//! Per-node clocks with constant offset and optional drift.
//!
//! §4.2: *"Even though the clocks may not be synchronized between the
//! sending and receiving switches, all one-way delays calculated would be
//! distorted by the same amount — still allowing for accurate relative
//! comparisons of one-way delays."* The simulator gives every node its
//! own clock so this claim is exercised by the code rather than assumed:
//! the data plane reads [`NodeClock::local_ns`], never global sim time.

use crate::time::SimTime;

/// A node-local clock: an affine map over simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeClock {
    /// Constant offset from true (simulated) time, nanoseconds, signed.
    pub offset_ns: i64,
    /// Frequency error in parts per million. 0 = perfect rate. The paper
    /// assumes negligible drift over measurement windows; experiments can
    /// set it non-zero to probe how much drift relative comparisons bear.
    pub drift_ppm: f64,
}

impl Default for NodeClock {
    fn default() -> Self {
        NodeClock {
            offset_ns: 0,
            drift_ppm: 0.0,
        }
    }
}

impl NodeClock {
    /// A perfectly synchronized clock.
    pub fn synchronized() -> Self {
        Self::default()
    }

    /// A clock with a constant offset (the paper's model).
    pub fn with_offset_ns(offset_ns: i64) -> Self {
        NodeClock {
            offset_ns,
            drift_ppm: 0.0,
        }
    }

    /// A clock with offset and drift.
    pub fn with_offset_and_drift(offset_ns: i64, drift_ppm: f64) -> Self {
        NodeClock {
            offset_ns,
            drift_ppm,
        }
    }

    /// The node-local reading at simulated instant `t`, in nanoseconds.
    /// Saturates at zero (a local clock cannot go negative).
    pub fn local_ns(&self, t: SimTime) -> u64 {
        let drift = (t.as_ns() as f64 * self.drift_ppm / 1e6) as i64;
        let local = t.as_ns() as i64 + self.offset_ns + drift;
        local.max(0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronized_clock_is_identity() {
        let c = NodeClock::synchronized();
        assert_eq!(c.local_ns(SimTime::from_ms(5)), 5_000_000);
    }

    #[test]
    fn constant_offset_applies() {
        let c = NodeClock::with_offset_ns(1_000_000);
        assert_eq!(c.local_ns(SimTime::from_ms(5)), 6_000_000);
        let c = NodeClock::with_offset_ns(-2_000_000);
        assert_eq!(c.local_ns(SimTime::from_ms(5)), 3_000_000);
    }

    #[test]
    fn negative_local_time_saturates() {
        let c = NodeClock::with_offset_ns(-10);
        assert_eq!(c.local_ns(SimTime(5)), 0);
    }

    #[test]
    fn drift_accumulates_linearly() {
        let c = NodeClock::with_offset_and_drift(0, 100.0); // 100 ppm fast
                                                            // After 1 s, a 100 ppm clock has gained 100 µs.
        assert_eq!(c.local_ns(SimTime::from_secs(1)), 1_000_000_000 + 100_000);
    }

    #[test]
    fn offset_cancels_in_relative_owd_comparison() {
        // The §4.2 argument, in miniature: two paths with true OWDs 28 ms
        // and 36.5 ms, measured with a receiver clock offset of +1 hour.
        let rx = NodeClock::with_offset_ns(3_600 * 1_000_000_000);
        let tx = NodeClock::synchronized();
        let send = SimTime::from_secs(10);
        let owd = |owd_true_ms: u64| {
            let arrive = send + SimTime::from_ms(owd_true_ms);
            rx.local_ns(arrive) as i64 - tx.local_ns(send) as i64
        };
        let gtt = owd(28);
        let ntt = owd(36); // both wildly wrong in absolute terms...
        assert_eq!(ntt - gtt, 8_000_000); // ...but exact relative to each other.
    }
}
