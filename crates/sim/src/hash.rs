//! Flow hashing: the 5-tuple hash core routers use for ECMP.
//!
//! §3: *"Tango tunnels traffic before forwarding it to each path to avoid
//! unpredictable path diversity (e.g., due to 5-tuple hashing in ECMP)
//! which will result in measuring multiple paths as one."* The simulator
//! hashes exactly the fields a real router would, so un-tunneled flows
//! smear across ECMP lanes while Tango's fixed outer header pins one lane.

use tango_net::{Ipv4Packet, Ipv6Packet, UdpPacket};

/// FNV-1a over a byte slice (deterministic, platform-independent).
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: a bijective avalanche over one `u64`.
///
/// Used to derive statistically independent per-node RNG stream seeds
/// from `(run seed, AS number)` — the derivation depends only on stable
/// identities, never on shard layout or event interleaving, which is what
/// keeps a sharded run bit-identical to the single-shard run.
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Compute the ECMP flow hash of a raw IP packet.
///
/// Hashes (src addr, dst addr, protocol) plus (src port, dst port) when
/// the payload is UDP or TCP and long enough to carry ports. Unparseable
/// packets hash their first bytes — a router would do something equally
/// arbitrary.
pub fn flow_hash(packet: &[u8]) -> u64 {
    let mut key = Vec::with_capacity(40);
    match packet.first().map(|b| b >> 4) {
        Some(4) => {
            if let Ok(ip) = Ipv4Packet::new_checked(packet) {
                key.extend_from_slice(&ip.src_addr().octets());
                key.extend_from_slice(&ip.dst_addr().octets());
                key.push(ip.protocol());
                if matches!(ip.protocol(), 6 | 17) {
                    push_ports(&mut key, ip.payload());
                }
                return fnv1a(&key);
            }
        }
        Some(6) => {
            if let Ok(ip) = Ipv6Packet::new_checked(packet) {
                key.extend_from_slice(&ip.src_addr().octets());
                key.extend_from_slice(&ip.dst_addr().octets());
                key.push(ip.next_header());
                if matches!(ip.next_header(), 6 | 17) {
                    push_ports(&mut key, ip.payload());
                }
                return fnv1a(&key);
            }
        }
        _ => {}
    }
    // tango-lint: allow(hot-path-panic) the range end is clamped to packet.len() by the min
    fnv1a(&packet[..packet.len().min(40)])
}

fn push_ports(key: &mut Vec<u8>, l4: &[u8]) {
    if let Ok(udp) = UdpPacket::new_checked(l4) {
        key.extend_from_slice(&udp.src_port().to_be_bytes());
        key.extend_from_slice(&udp.dst_port().to_be_bytes());
    } else if l4.len() >= 4 {
        // tango-lint: allow(hot-path-panic) the l4.len() >= 4 guard bounds the slice
        key.extend_from_slice(&l4[..4]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_net::{Ipv6Repr, UdpRepr};

    fn udp6(src_port: u16, dst_port: u16, dst_last: u16) -> Vec<u8> {
        let udp = UdpRepr {
            src_port,
            dst_port,
            payload_len: 4,
        };
        let ip = Ipv6Repr {
            src_addr: "2001:db8:100::1".parse().unwrap(),
            dst_addr: format!("2001:db8:200::{dst_last:x}").parse().unwrap(),
            next_header: 17,
            payload_len: udp.total_len(),
            hop_limit: 64,
            traffic_class: 0,
            flow_label: 0,
        };
        let mut buf = vec![0u8; ip.total_len()];
        let mut p = Ipv6Packet::new_unchecked(&mut buf);
        ip.emit(&mut p).unwrap();
        let mut u = UdpPacket::new_unchecked(p.payload_mut());
        udp.emit(&mut u).unwrap();
        buf
    }

    #[test]
    fn same_five_tuple_same_hash() {
        assert_eq!(
            flow_hash(&udp6(1000, 2000, 1)),
            flow_hash(&udp6(1000, 2000, 1))
        );
    }

    #[test]
    fn hash_depends_on_ports_and_addrs() {
        let base = flow_hash(&udp6(1000, 2000, 1));
        assert_ne!(
            base,
            flow_hash(&udp6(1001, 2000, 1)),
            "src port must matter"
        );
        assert_ne!(
            base,
            flow_hash(&udp6(1000, 2001, 1)),
            "dst port must matter"
        );
        assert_ne!(
            base,
            flow_hash(&udp6(1000, 2000, 2)),
            "dst addr must matter"
        );
    }

    #[test]
    fn payload_does_not_affect_hash() {
        let mut a = udp6(7, 8, 1);
        let mut b = udp6(7, 8, 1);
        let n = a.len();
        a[n - 1] = 0x11;
        b[n - 1] = 0x22;
        assert_eq!(flow_hash(&a), flow_hash(&b));
    }

    #[test]
    fn garbage_does_not_panic() {
        assert_eq!(flow_hash(&[]), flow_hash(&[]));
        let _ = flow_hash(&[0x45]);
        let _ = flow_hash(&[0x60, 1, 2, 3]);
        let _ = flow_hash(&[0xff; 64]);
    }

    #[test]
    fn mix64_avalanches_and_separates_streams() {
        // Adjacent inputs must land far apart (no accidental stream
        // correlation between neighboring AS numbers).
        assert_ne!(mix64(0), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        let a = mix64(1) ^ mix64(2);
        assert!(a.count_ones() > 8, "weak diffusion: {a:#x}");
        // Deterministic across calls.
        assert_eq!(mix64(0xdead_beef), mix64(0xdead_beef));
    }

    #[test]
    fn many_flows_spread_over_lanes() {
        // 100 flows over 4 lanes: every lane should be hit.
        let mut lanes = [0u32; 4];
        for sp in 0..100u16 {
            let h = flow_hash(&udp6(sp, 443, 1));
            lanes[(h % 4) as usize] += 1;
        }
        assert!(lanes.iter().all(|&c| c > 5), "lanes {lanes:?}");
    }
}
