//! Traffic arrival schedules.
//!
//! The prototype "ran a ping along each path every 10 ms" (§5); the drone
//! workload of §2.2 is better modeled by a Poisson process. A
//! [`Schedule`] yields successive departure instants; agents use one per
//! tunnel/probe stream, re-arming a timer at each firing.

use crate::time::SimTime;
use rand::Rng;

/// A stream of departure times.
pub trait Schedule {
    /// The next departure strictly after `now`, or `None` if the schedule
    /// is exhausted.
    fn next_after<R: Rng + ?Sized>(&mut self, now: SimTime, rng: &mut R) -> Option<SimTime>;
}

/// Constant bit-rate: one departure every `period` (the paper's probe
/// stream: `period = 10 ms`).
#[derive(Debug, Clone, Copy)]
pub struct CbrSchedule {
    /// Inter-departure period.
    pub period: SimTime,
    /// Stop after this instant (inclusive). `None` = unbounded.
    pub until: Option<SimTime>,
}

impl CbrSchedule {
    /// An unbounded CBR schedule.
    pub fn every(period: SimTime) -> Self {
        CbrSchedule {
            period,
            until: None,
        }
    }

    /// Bound the schedule.
    pub fn until(mut self, t: SimTime) -> Self {
        self.until = Some(t);
        self
    }
}

impl Schedule for CbrSchedule {
    fn next_after<R: Rng + ?Sized>(&mut self, now: SimTime, _rng: &mut R) -> Option<SimTime> {
        let next = now + self.period;
        match self.until {
            Some(limit) if next > limit => None,
            _ => Some(next),
        }
    }
}

/// Poisson arrivals with the given mean rate (exponential gaps).
#[derive(Debug, Clone, Copy)]
pub struct PoissonSchedule {
    /// Mean inter-arrival gap.
    pub mean_gap: SimTime,
    /// Stop after this instant (inclusive). `None` = unbounded.
    pub until: Option<SimTime>,
}

impl PoissonSchedule {
    /// Poisson process with the given mean gap.
    pub fn with_mean_gap(mean_gap: SimTime) -> Self {
        assert!(mean_gap.as_ns() > 0, "mean gap must be positive");
        PoissonSchedule {
            mean_gap,
            until: None,
        }
    }

    /// Bound the schedule.
    pub fn until(mut self, t: SimTime) -> Self {
        self.until = Some(t);
        self
    }
}

impl Schedule for PoissonSchedule {
    fn next_after<R: Rng + ?Sized>(&mut self, now: SimTime, rng: &mut R) -> Option<SimTime> {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap_ns = (-u.ln() * self.mean_gap.as_ns() as f64).max(1.0) as u64;
        let next = now + SimTime(gap_ns);
        match self.until {
            Some(limit) if next > limit => None,
            _ => Some(next),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cbr_is_exactly_periodic() {
        let mut s = CbrSchedule::every(SimTime::from_ms(10));
        let mut rng = StdRng::seed_from_u64(1);
        let mut now = SimTime::ZERO;
        for i in 1..=5 {
            now = s.next_after(now, &mut rng).unwrap();
            assert_eq!(now, SimTime::from_ms(10 * i));
        }
    }

    #[test]
    fn cbr_stops_at_bound() {
        let mut s = CbrSchedule::every(SimTime::from_ms(10)).until(SimTime::from_ms(25));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            s.next_after(SimTime::ZERO, &mut rng),
            Some(SimTime::from_ms(10))
        );
        assert_eq!(
            s.next_after(SimTime::from_ms(10), &mut rng),
            Some(SimTime::from_ms(20))
        );
        assert_eq!(s.next_after(SimTime::from_ms(20), &mut rng), None);
    }

    #[test]
    fn poisson_mean_gap_statistics() {
        let mut s = PoissonSchedule::with_mean_gap(SimTime::from_ms(10));
        let mut rng = StdRng::seed_from_u64(7);
        let mut now = SimTime::ZERO;
        let n = 20_000;
        let mut gaps = Vec::with_capacity(n);
        for _ in 0..n {
            let next = s.next_after(now, &mut rng).unwrap();
            gaps.push((next - now).as_ns() as f64);
            now = next;
        }
        let mean = gaps.iter().sum::<f64>() / n as f64;
        assert!((mean - 1e7).abs() < 2e5, "mean gap {mean}");
        // Exponential: std ≈ mean.
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((var.sqrt() - 1e7).abs() < 5e5, "std {}", var.sqrt());
    }

    #[test]
    fn poisson_gaps_are_strictly_positive() {
        let mut s = PoissonSchedule::with_mean_gap(SimTime::from_us(1));
        let mut rng = StdRng::seed_from_u64(3);
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            let next = s.next_after(now, &mut rng).unwrap();
            assert!(next > now);
            now = next;
        }
    }

    #[test]
    fn poisson_respects_bound() {
        let mut s =
            PoissonSchedule::with_mean_gap(SimTime::from_ms(100)).until(SimTime::from_ms(1));
        let mut rng = StdRng::seed_from_u64(3);
        // Overwhelmingly likely that the first gap exceeds the 1 ms bound.
        let mut stopped = false;
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            match s.next_after(now, &mut rng) {
                Some(t) => now = t,
                None => {
                    stopped = true;
                    break;
                }
            }
        }
        assert!(stopped);
    }
}
