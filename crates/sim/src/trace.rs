//! Bounded event tracing for debugging and tests.
//!
//! Inspired by smoltcp's `--pcap` facility: every packet-level incident
//! can be recorded, bounded by a ring capacity so an 8-day run cannot
//! exhaust memory. Disabled (capacity 0) by default.

use crate::time::SimTime;
use tango_topology::AsId;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A packet left `node` toward the given neighbor.
    Tx {
        /// Receiving neighbor.
        to: AsId,
    },
    /// A packet was handed to `node`'s agent.
    Rx,
    /// Dropped by stochastic link loss.
    LossLink,
    /// Dropped by an active outage event.
    LossOutage,
    /// Dropped by the fault injector.
    LossFault,
    /// Tail-dropped by a full queue on a capacity-limited link.
    LossQueue,
    /// A byte was corrupted by the fault injector (packet still delivered).
    Corrupt,
    /// No link to the requested next hop.
    NoLink,
    /// No route for the destination (router table miss).
    NoRoute,
    /// Hop limit exhausted.
    TtlExpired,
    /// A timer fired with this tag.
    Timer {
        /// The timer's tag.
        tag: u64,
    },
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When (simulated).
    pub time: SimTime,
    /// Where.
    pub node: AsId,
    /// What.
    pub kind: TraceKind,
}

/// A bounded ring of trace events.
#[derive(Debug, Default)]
pub struct Tracer {
    capacity: usize,
    events: Vec<TraceEvent>,
    head: usize,
    total: u64,
}

impl Tracer {
    /// A tracer keeping at most `capacity` most-recent events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            capacity,
            events: Vec::new(),
            head: 0,
            total: 0,
        }
    }

    /// Record an event (no-op when capacity is 0).
    pub fn record(&mut self, event: TraceEvent) {
        self.total += 1;
        if self.capacity == 0 {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Events in chronological order (oldest retained first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Count retained events matching a predicate.
    pub fn count(&self, f: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| f(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent {
            time: SimTime(t),
            node: AsId(1),
            kind: TraceKind::Rx,
        }
    }

    #[test]
    fn zero_capacity_records_nothing_but_counts() {
        let mut t = Tracer::new(0);
        t.record(ev(1));
        t.record(ev(2));
        assert!(t.events().is_empty());
        assert_eq!(t.total_recorded(), 2);
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let mut t = Tracer::new(3);
        for i in 1..=5 {
            t.record(ev(i));
        }
        let times: Vec<u64> = t.events().iter().map(|e| e.time.0).collect();
        assert_eq!(times, vec![3, 4, 5]);
        assert_eq!(t.total_recorded(), 5);
    }

    #[test]
    fn under_capacity_keeps_all() {
        let mut t = Tracer::new(10);
        t.record(ev(1));
        t.record(ev(2));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.count(|e| e.time.0 == 1), 1);
    }
}
