//! Bounded event tracing for debugging and tests.
//!
//! Inspired by smoltcp's `--pcap` facility: every packet-level incident
//! can be recorded, bounded by a ring capacity so an 8-day run cannot
//! exhaust memory. Disabled (capacity 0) by default.
//!
//! Every record carries a [`TraceTag`] — the canonical dispatch key of
//! the event that produced it plus an intra-dispatch index. The tag is a
//! function of stable identities only (virtual time, emitting origin,
//! per-origin sequence), never of shard layout or realized execution
//! interleaving, so per-shard rings [`Tracer::merged`] into the same
//! canonical order a single-queue run records.

use crate::time::SimTime;
use tango_topology::AsId;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A packet left `node` toward the given neighbor.
    Tx {
        /// Receiving neighbor.
        to: AsId,
    },
    /// A packet was handed to `node`'s agent.
    Rx,
    /// Dropped by stochastic link loss.
    LossLink,
    /// Dropped by an active outage event.
    LossOutage,
    /// Dropped by the fault injector.
    LossFault,
    /// Tail-dropped by a full queue on a capacity-limited link.
    LossQueue,
    /// A byte was corrupted by the fault injector (packet still delivered).
    Corrupt,
    /// No link to the requested next hop.
    NoLink,
    /// No route for the destination (router table miss).
    NoRoute,
    /// Hop limit exhausted.
    TtlExpired,
    /// A timer fired with this tag.
    Timer {
        /// The timer's tag.
        tag: u64,
    },
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When (simulated).
    pub time: SimTime,
    /// Where.
    pub node: AsId,
    /// What.
    pub kind: TraceKind,
}

/// Canonical ordering key of a trace record: the dispatch key of the
/// event being processed when it was recorded, plus the record's index
/// within that dispatch. Globally unique (origins never share sequence
/// numbers) and shard-count independent, so sorting any union of
/// per-shard rings by tag reproduces the single-shard order exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct TraceTag {
    /// Event time, ns.
    pub time_ns: u64,
    /// Emitting origin: 0 for the external scheduler, node index + 1 for
    /// events emitted by a node's agent.
    pub origin: u32,
    /// Per-origin emission sequence number.
    pub seq: u64,
    /// Index of this record within its dispatch.
    pub intra: u32,
}

/// A bounded ring of trace events.
#[derive(Debug, Default)]
pub struct Tracer {
    capacity: usize,
    entries: Vec<(TraceTag, TraceEvent)>,
    head: usize,
    total: u64,
    current: TraceTag,
}

impl Tracer {
    /// A tracer keeping at most `capacity` most-recent events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            capacity,
            entries: Vec::new(),
            head: 0,
            total: 0,
            current: TraceTag::default(),
        }
    }

    /// Mark the start of a dispatch: records up to the next call carry
    /// this key, with an incrementing intra-dispatch index.
    pub fn begin_dispatch(&mut self, time_ns: u64, origin: u32, seq: u64) {
        self.current = TraceTag {
            time_ns,
            origin,
            seq,
            intra: 0,
        };
    }

    /// Record an event (no-op when capacity is 0).
    pub fn record(&mut self, event: TraceEvent) {
        self.total += 1;
        let tag = self.current;
        self.current.intra += 1;
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((tag, event));
        } else {
            // tango-lint: allow(hot-path-panic) head < capacity == len here; silently dropping on a broken invariant would corrupt the ring, so the bounds check must stay fatal
            self.entries[self.head] = (tag, event);
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Retained events in canonical (tag) order.
    ///
    /// Within one run this coincides with chronological recording order
    /// except inside a same-timestamp cluster, where the canonical key
    /// order — not the realized dispatch interleaving — defines the
    /// output. That is exactly what makes the result shard-invariant.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut sorted: Vec<(TraceTag, TraceEvent)> = self.entries.clone();
        sorted.sort_unstable_by_key(|&(tag, _)| tag);
        sorted.into_iter().map(|(_, e)| e).collect()
    }

    /// Merge per-shard rings into one canonical tracer: union the
    /// retained entries, sort by tag, keep the most-recent `capacity`.
    ///
    /// When the union exceeds the capacity the eviction boundary can
    /// differ from a single-shard run's within one wrapping
    /// same-timestamp cluster (each ring evicts by its own realized
    /// order); runs whose rings never wrap merge exactly.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a Tracer>) -> Tracer {
        let mut capacity = 0usize;
        let mut total = 0u64;
        let mut entries: Vec<(TraceTag, TraceEvent)> = Vec::new();
        for part in parts {
            capacity = capacity.max(part.capacity);
            total += part.total;
            entries.extend_from_slice(&part.entries);
        }
        entries.sort_unstable_by_key(|&(tag, _)| tag);
        if entries.len() > capacity {
            let excess = entries.len() - capacity;
            entries.drain(..excess);
        }
        Tracer {
            capacity,
            entries,
            head: 0,
            total,
            current: TraceTag::default(),
        }
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Count retained events matching a predicate.
    pub fn count(&self, f: impl Fn(&TraceEvent) -> bool) -> usize {
        self.entries.iter().filter(|(_, e)| f(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent {
            time: SimTime(t),
            node: AsId(1),
            kind: TraceKind::Rx,
        }
    }

    #[test]
    fn zero_capacity_records_nothing_but_counts() {
        let mut t = Tracer::new(0);
        t.record(ev(1));
        t.record(ev(2));
        assert!(t.events().is_empty());
        assert_eq!(t.total_recorded(), 2);
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let mut t = Tracer::new(3);
        for i in 1..=5 {
            t.record(ev(i));
        }
        let times: Vec<u64> = t.events().iter().map(|e| e.time.0).collect();
        assert_eq!(times, vec![3, 4, 5]);
        assert_eq!(t.total_recorded(), 5);
    }

    #[test]
    fn under_capacity_keeps_all() {
        let mut t = Tracer::new(10);
        t.record(ev(1));
        t.record(ev(2));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.count(|e| e.time.0 == 1), 1);
    }

    #[test]
    fn events_sort_by_tag_not_arrival() {
        // Two dispatches recorded out of canonical order (as happens when
        // a same-timestamp cluster realizes in non-key order): events()
        // must present them in tag order.
        let mut t = Tracer::new(10);
        t.begin_dispatch(5, 3, 1);
        t.record(ev(5));
        t.begin_dispatch(5, 1, 9);
        t.record(ev(5));
        t.record(ev(5));
        let tags: Vec<TraceTag> = {
            let mut sorted = t.entries.clone();
            sorted.sort_unstable_by_key(|&(tag, _)| tag);
            sorted.into_iter().map(|(tag, _)| tag).collect()
        };
        assert_eq!(
            tags,
            vec![
                TraceTag {
                    time_ns: 5,
                    origin: 1,
                    seq: 9,
                    intra: 0
                },
                TraceTag {
                    time_ns: 5,
                    origin: 1,
                    seq: 9,
                    intra: 1
                },
                TraceTag {
                    time_ns: 5,
                    origin: 3,
                    seq: 1,
                    intra: 0
                },
            ]
        );
    }

    #[test]
    fn merged_reproduces_single_ring_order() {
        // Interleave tagged records across two rings; the merge must equal
        // one ring receiving everything in tag order.
        let mut single = Tracer::new(8);
        let mut a = Tracer::new(8);
        let mut b = Tracer::new(8);
        for (time, origin, seq) in [(1u64, 1u32, 1u64), (1, 2, 1), (2, 1, 2), (3, 2, 2)] {
            single.begin_dispatch(time, origin, seq);
            single.record(ev(time));
            let part = if origin == 1 { &mut a } else { &mut b };
            part.begin_dispatch(time, origin, seq);
            part.record(ev(time));
        }
        let merged = Tracer::merged([&a, &b]);
        assert_eq!(merged.events(), single.events());
        assert_eq!(merged.total_recorded(), single.total_recorded());
    }
}
