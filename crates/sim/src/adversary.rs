//! Byzantine on-path actors.
//!
//! Everything the paper's trust model assumes away (§3, §6): a transit
//! AS that *lies*. An [`AdversaryAgent`] wraps an ordinary forwarding
//! agent (typically a `RouterAgent`) at any node on a provisioned path
//! and misbehaves on the traffic passing through it:
//!
//! * **OWD poisoning** — rewrites the piggybacked timestamp (and
//!   optionally the sequence number) of Tango tunnel packets, then
//!   re-fills the UDP checksum like a competent on-path attacker would.
//!   Without authenticated telemetry the receiver dutifully computes a
//!   skewed one-way delay; with the SipHash tag the tamper invalidates
//!   the trailer and the packet is rejected at decap.
//! * **Replay** — records passing tunnel packets (tag intact!) and
//!   retransmits them later: stale telemetry with perfectly valid
//!   authentication, defeated only by the receiver's anti-replay window.
//! * **Report spoofing** — injects pre-built forged packets (e.g. a
//!   fabricated `REPORT` claiming the attacker's preferred path is
//!   fastest) on a period.
//!
//! Behaviors are windowed in simulator time, so a chaos schedule can
//! turn them on and off mid-run deterministically.

use crate::engine::{Agent, Ctx, Packet};
use crate::time::SimTime;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use tango_net::{ipv6, udp, Ipv6Packet, TangoPacket, UdpPacket, TANGO_HEADER_LEN, TANGO_UDP_PORT};

/// Timer tag the spoof-report behavior fires on. Arm it externally with
/// `NetworkSim::schedule_timer_at(start, attacker_node, TAG_ADV_SPOOF)`;
/// it re-arms itself while its window is open. The wrapped forwarding
/// agent must not use timers (routers don't).
pub const TAG_ADV_SPOOF: u64 = 0xAD5E_0000;
/// Timer tag for releasing a stashed replay.
pub const TAG_ADV_REPLAY: u64 = 0xAD5E_0001;

/// A half-open activity window `[from, until)` in simulator time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveWindow {
    /// First instant the behavior is live.
    pub from: SimTime,
    /// First instant it is no longer live.
    pub until: SimTime,
}

impl ActiveWindow {
    /// Is `t` inside the window?
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.from && t < self.until
    }
}

/// One attacker behavior. Several can be attached to the same node.
#[derive(Debug, Clone)]
pub enum AdversaryBehavior {
    /// Skew the piggybacked timestamp of every transiting Tango packet
    /// by `skew_ns` (saturating) and bump its sequence by `seq_offset`.
    OwdPoison {
        /// When the poisoning is live.
        window: ActiveWindow,
        /// Added to each timestamp; negative claims the path got faster.
        skew_ns: i64,
        /// Added (wrapping) to each sequence number; 0 leaves them alone.
        seq_offset: u32,
    },
    /// Record every `every`-th transiting Tango packet and retransmit the
    /// copy `delay` later — valid tag, stale content.
    Replay {
        /// When capture is live (releases may land after it closes).
        window: ActiveWindow,
        /// How long after capture the copy is re-injected.
        delay: SimTime,
        /// Capture cadence: 1 = every Tango packet.
        every: u32,
    },
    /// Inject a pre-built wire packet every `period` while the window is
    /// open. The payload is typically a forged Tango `REPORT` built by
    /// the experiment (wrong key or no key — the attacker does not hold
    /// the pairing's secret).
    SpoofPackets {
        /// When injection is live.
        window: ActiveWindow,
        /// Injection period.
        period: SimTime,
        /// Complete wire bytes (outer IPv6 onward) of the forgery.
        packet: Vec<u8>,
    },
}

/// What an adversary actually did, for the experiment tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdversaryStats {
    /// Tango packets whose telemetry fields were rewritten.
    pub poisoned: u64,
    /// Tango packets captured for later replay.
    pub captured: u64,
    /// Stashed copies re-injected.
    pub replayed: u64,
    /// Forged packets injected.
    pub spoofed: u64,
}

/// Shared handle to an adversary's counters (the experiment keeps one
/// end, the installed agent the other).
pub type SharedAdversaryStats = Arc<Mutex<AdversaryStats>>;

/// Create a fresh shared counter handle.
pub fn shared_adversary_stats() -> SharedAdversaryStats {
    Arc::new(Mutex::new(AdversaryStats::default()))
}

/// A Byzantine node: behaves like its wrapped inner agent, except for
/// the configured behaviors.
pub struct AdversaryAgent {
    inner: Box<dyn Agent>,
    behaviors: Vec<AdversaryBehavior>,
    stash: VecDeque<Packet>,
    transited: u64,
    stats: SharedAdversaryStats,
}

impl AdversaryAgent {
    /// Wrap `inner` with the given behaviors.
    pub fn new(
        inner: Box<dyn Agent>,
        behaviors: Vec<AdversaryBehavior>,
        stats: SharedAdversaryStats,
    ) -> Self {
        AdversaryAgent {
            inner,
            behaviors,
            stash: VecDeque::new(),
            transited: 0,
            stats,
        }
    }
}

/// Is this a Tango tunnel packet (outer IPv6 + UDP to the Tango port,
/// with at least a full Tango header)?
fn is_tango_wire(bytes: &[u8]) -> bool {
    let Ok(ip) = Ipv6Packet::new_checked(bytes) else {
        return false;
    };
    if ip.next_header() != 17 {
        return false;
    }
    match UdpPacket::new_checked(ip.payload()) {
        Ok(u) => u.dst_port() == TANGO_UDP_PORT && u.payload().len() >= TANGO_HEADER_LEN,
        Err(_) => false,
    }
}

/// Rewrite timestamp/sequence in place and re-fill the UDP checksum.
/// Returns false (leaving the packet untouched beyond parse) if the
/// bytes are not a Tango tunnel packet.
// tango-lint: allow(hot-path-panic) is_tango_wire verified length >= v6+udp+tango headers before any slicing
fn poison_in_place(bytes: &mut [u8], skew_ns: i64, seq_offset: u32) -> bool {
    if !is_tango_wire(bytes) {
        return false;
    }
    let (src, dst) = {
        let ip = Ipv6Packet::new_unchecked(&bytes[..]);
        (ip.src_addr(), ip.dst_addr())
    };
    let tango_off = ipv6::HEADER_LEN + udp::HEADER_LEN;
    {
        let mut tp =
            TangoPacket::new_unchecked(&mut bytes[tango_off..tango_off + TANGO_HEADER_LEN]);
        let ts = tp.timestamp_ns();
        let skewed = if skew_ns >= 0 {
            ts.saturating_add(skew_ns as u64)
        } else {
            ts.saturating_sub(skew_ns.unsigned_abs())
        };
        tp.set_timestamp_ns(skewed);
        if seq_offset != 0 {
            let s = tp.sequence();
            tp.set_sequence(s.wrapping_add(seq_offset));
        }
    }
    let mut udp_pkt = UdpPacket::new_unchecked(&mut bytes[ipv6::HEADER_LEN..]);
    udp_pkt.fill_checksum_v6(src, dst);
    true
}

impl Agent for AdversaryAgent {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, mut pkt: Packet) {
        let now = ctx.now();
        if is_tango_wire(pkt.bytes()) {
            self.transited += 1;
            // Capture first (the pristine packet, tag intact), then
            // poison: a replayed copy must carry valid authentication.
            let mut capture: Option<SimTime> = None;
            let mut poison: Option<(i64, u32)> = None;
            for b in &self.behaviors {
                match *b {
                    AdversaryBehavior::Replay {
                        window,
                        delay,
                        every,
                    } if window.contains(now)
                        && every > 0
                        && self.transited % u64::from(every) == 0 =>
                    {
                        capture = Some(delay);
                    }
                    AdversaryBehavior::OwdPoison {
                        window,
                        skew_ns,
                        seq_offset,
                    } if window.contains(now) => {
                        poison = Some((skew_ns, seq_offset));
                    }
                    _ => {}
                }
            }
            if let Some(delay) = capture {
                self.stash.push_back(pkt.clone());
                self.stats.lock().captured += 1;
                ctx.schedule_timer(delay, TAG_ADV_REPLAY);
            }
            if let Some((skew_ns, seq_offset)) = poison {
                if poison_in_place(pkt.bytes_mut(), skew_ns, seq_offset) {
                    self.stats.lock().poisoned += 1;
                }
            }
        }
        self.inner.on_packet(ctx, pkt);
    }

    fn on_host_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        self.inner.on_host_packet(ctx, pkt);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        match tag {
            TAG_ADV_REPLAY => {
                if let Some(copy) = self.stash.pop_front() {
                    self.stats.lock().replayed += 1;
                    // Hand the stale copy to the inner router: it forwards
                    // toward the original destination like any transit
                    // packet.
                    self.inner.on_packet(ctx, copy);
                }
            }
            TAG_ADV_SPOOF => {
                let now = ctx.now();
                let mut next_due = false;
                for b in &self.behaviors {
                    if let AdversaryBehavior::SpoofPackets {
                        window,
                        period,
                        packet,
                    } = b
                    {
                        if window.contains(now) {
                            let forged = Packet::new(packet.clone());
                            self.stats.lock().spoofed += 1;
                            self.inner.on_packet(ctx, forged);
                            if now + *period < window.until {
                                next_due = true;
                            }
                        } else if now < window.from {
                            // Armed early: keep ticking until the window
                            // opens.
                            next_due = true;
                        }
                    }
                }
                if next_due {
                    // All spoof behaviors share the tag; re-arm at the
                    // smallest period among them.
                    let period = self
                        .behaviors
                        .iter()
                        .filter_map(|b| match b {
                            AdversaryBehavior::SpoofPackets { period, .. } => Some(*period),
                            _ => None,
                        })
                        .min();
                    if let Some(p) = period {
                        ctx.schedule_timer(p, TAG_ADV_SPOOF);
                    }
                }
            }
            other => self.inner.on_timer(ctx, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_contains_is_half_open() {
        let w = ActiveWindow {
            from: SimTime(10),
            until: SimTime(20),
        };
        assert!(!w.contains(SimTime(9)));
        assert!(w.contains(SimTime(10)));
        assert!(w.contains(SimTime(19)));
        assert!(!w.contains(SimTime(20)));
    }

    #[test]
    fn poison_rejects_non_tango_bytes() {
        let mut junk = vec![0u8; 60];
        assert!(!poison_in_place(&mut junk, 1_000, 0));
    }
}
