//! Random fault injection, after smoltcp's `--drop-chance` /
//! `--corrupt-chance` examples.
//!
//! The injector sits on every link transmission (when configured) and
//! either drops the packet, flips one random bit, or passes it through.
//! Corruption exercises the data plane's checksum / magic validation: a
//! corrupted tunnel packet must be *counted and discarded*, never turned
//! into a bogus one-way-delay sample.

use rand::Rng;

/// What the injector decided for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver unchanged.
    Pass,
    /// Drop silently.
    Drop,
    /// One bit was flipped in place.
    Corrupted,
}

/// Configuration for random packet faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    /// Probability a packet is dropped.
    pub drop_chance: f64,
    /// Probability one bit of a surviving packet is flipped.
    pub corrupt_chance: f64,
}

impl FaultInjector {
    /// An injector with the given probabilities (clamped to [0, 1]).
    pub fn new(drop_chance: f64, corrupt_chance: f64) -> Self {
        FaultInjector {
            drop_chance: drop_chance.clamp(0.0, 1.0),
            corrupt_chance: corrupt_chance.clamp(0.0, 1.0),
        }
    }

    /// Apply to a packet buffer. May flip one bit in place.
    pub fn apply<R: Rng + ?Sized>(&self, rng: &mut R, bytes: &mut [u8]) -> FaultDecision {
        if self.drop_chance > 0.0 && rng.gen_bool(self.drop_chance) {
            return FaultDecision::Drop;
        }
        if self.corrupt_chance > 0.0 && !bytes.is_empty() && rng.gen_bool(self.corrupt_chance) {
            let idx = rng.gen_range(0..bytes.len());
            let bit = rng.gen_range(0..8u32);
            // tango-lint: allow(hot-path-panic) gen_range(0..len) is in bounds; is_empty checked above
            bytes[idx] ^= 1u8 << bit;
            return FaultDecision::Corrupted;
        }
        FaultDecision::Pass
    }
}

/// Per-path outage windows with interval normalization.
///
/// The invariant checker needs to answer "was path *p* known-dead at
/// time *t*?" against a chaos schedule whose outages freely overlap and
/// abut. Windows are half-open `[from, until)`; overlapping and
/// *adjacent* windows merge, so `[10,20)+[20,30)` is one dead interval
/// `[10,30)` with no phantom one-instant recovery at 20.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutageSchedule {
    /// Sorted, disjoint, non-adjacent windows per path id.
    windows: std::collections::BTreeMap<u16, Vec<(u64, u64)>>,
}

impl OutageSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one outage window `[from_ns, until_ns)` for `path`.
    /// Empty/inverted windows are ignored.
    pub fn add(&mut self, path: u16, from_ns: u64, until_ns: u64) {
        if until_ns <= from_ns {
            return;
        }
        let v = self.windows.entry(path).or_default();
        v.push((from_ns, until_ns));
        v.sort_unstable();
        // Merge overlapping and adjacent neighbors.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(v.len());
        for &(a, b) in v.iter() {
            match merged.last_mut() {
                Some(last) if a <= last.1 => last.1 = last.1.max(b),
                _ => merged.push((a, b)),
            }
        }
        *v = merged;
    }

    /// Is `path` inside an outage at `t_ns`?
    pub fn active(&self, path: u16, t_ns: u64) -> bool {
        self.windows
            .get(&path)
            .map(|v| {
                v.iter()
                    .take_while(|&&(a, _)| a <= t_ns)
                    .any(|&(_, b)| t_ns < b)
            })
            .unwrap_or(false)
    }

    /// The normalized windows for `path` (sorted, disjoint,
    /// non-adjacent).
    pub fn windows(&self, path: u16) -> &[(u64, u64)] {
        self.windows.get(&path).map(Vec::as_slice).unwrap_or(&[])
    }

    /// When every outage on every path is over (0 if none).
    pub fn all_clear_ns(&self) -> u64 {
        self.windows
            .values()
            .filter_map(|v| v.last().map(|&(_, b)| b))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn outage_overlapping_windows_merge() {
        let mut o = OutageSchedule::new();
        o.add(0, 10, 30);
        o.add(0, 20, 40);
        assert_eq!(o.windows(0), &[(10, 40)]);
        assert!(o.active(0, 35));
        assert!(!o.active(0, 40), "half-open end");
    }

    #[test]
    fn outage_adjacent_windows_merge() {
        let mut o = OutageSchedule::new();
        o.add(0, 10, 20);
        o.add(0, 20, 30);
        assert_eq!(o.windows(0), &[(10, 30)]);
        assert!(o.active(0, 20), "no phantom recovery at the seam");
    }

    #[test]
    fn outage_disjoint_windows_stay_separate() {
        let mut o = OutageSchedule::new();
        o.add(1, 50, 60);
        o.add(1, 10, 20);
        assert_eq!(o.windows(1), &[(10, 20), (50, 60)]);
        assert!(!o.active(1, 30));
        assert_eq!(o.all_clear_ns(), 60);
    }

    #[test]
    fn outage_paths_independent() {
        let mut o = OutageSchedule::new();
        o.add(0, 0, 100);
        assert!(o.active(0, 50));
        assert!(!o.active(1, 50));
        assert!(o.windows(2).is_empty());
    }

    #[test]
    fn outage_empty_window_ignored() {
        let mut o = OutageSchedule::new();
        o.add(0, 10, 10);
        o.add(0, 20, 15);
        assert!(o.windows(0).is_empty());
        assert_eq!(o.all_clear_ns(), 0);
    }

    #[test]
    fn zero_rates_always_pass() {
        let f = FaultInjector::new(0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = [1u8, 2, 3];
        for _ in 0..100 {
            assert_eq!(f.apply(&mut rng, &mut b), FaultDecision::Pass);
        }
        assert_eq!(b, [1, 2, 3]);
    }

    #[test]
    fn full_drop_rate_always_drops() {
        let f = FaultInjector::new(1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = [0u8; 4];
        assert_eq!(f.apply(&mut rng, &mut b), FaultDecision::Drop);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let f = FaultInjector::new(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let orig = [0xaau8; 16];
        let mut b = orig;
        assert_eq!(f.apply(&mut rng, &mut b), FaultDecision::Corrupted);
        let flipped: u32 = orig.iter().zip(&b).map(|(a, c)| (a ^ c).count_ones()).sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn empty_packet_never_corrupts() {
        let f = FaultInjector::new(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut b: [u8; 0] = [];
        assert_eq!(f.apply(&mut rng, &mut b), FaultDecision::Pass);
    }

    #[test]
    fn rates_clamp() {
        let f = FaultInjector::new(7.0, -2.0);
        assert_eq!(f.drop_chance, 1.0);
        assert_eq!(f.corrupt_chance, 0.0);
    }

    #[test]
    fn statistical_rates_roughly_match() {
        let f = FaultInjector::new(0.15, 0.15);
        let mut rng = StdRng::seed_from_u64(4);
        let (mut drops, mut corrupts) = (0u32, 0u32);
        let n = 20_000;
        for _ in 0..n {
            let mut b = [0u8; 8];
            match f.apply(&mut rng, &mut b) {
                FaultDecision::Drop => drops += 1,
                FaultDecision::Corrupted => corrupts += 1,
                FaultDecision::Pass => {}
            }
        }
        let drop_rate = f64::from(drops) / f64::from(n);
        // Corruption applies only to survivors: expected 0.15 * 0.85.
        let corrupt_rate = f64::from(corrupts) / f64::from(n);
        assert!((drop_rate - 0.15).abs() < 0.01, "drop {drop_rate}");
        assert!(
            (corrupt_rate - 0.1275).abs() < 0.01,
            "corrupt {corrupt_rate}"
        );
    }
}
