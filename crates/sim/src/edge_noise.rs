//! Edge-network and end-host measurement noise models.
//!
//! §2.2: *"the drones in ASX may experience link-layer retransmissions of
//! corrupted packets in the wireless network, while the virtual machines
//! in ASY may experience random delays in the hypervisor of the hosting
//! servers."* These are the noise sources that pollute *end-to-end*
//! measurements and that Tango's border-switch one-way measurements avoid
//! (§3). The ablation experiment A1 uses these models to quantify the
//! accuracy gap between host-measured RTT and switch-measured OWD.

use rand::Rng;

/// Wireless access-network noise: bursty link-layer retransmissions.
///
/// With probability `burst_prob` a packet is caught in a retransmission
/// burst and delayed by 1..=`max_retries` times the retransmit timeout;
/// otherwise it sees a small uniform MAC-contention delay.
#[derive(Debug, Clone, Copy)]
pub struct WirelessNoise {
    /// Probability a packet hits a retransmission burst.
    pub burst_prob: f64,
    /// One retransmission timeout, ns.
    pub retransmit_timeout_ns: u64,
    /// Maximum retransmissions in a burst.
    pub max_retries: u32,
    /// Upper bound of the always-present contention delay, ns.
    pub contention_max_ns: u64,
}

impl Default for WirelessNoise {
    fn default() -> Self {
        // 802.11-flavored defaults: 2% bursts, 4 ms RTO, up to 4 retries,
        // up to 500 µs contention.
        WirelessNoise {
            burst_prob: 0.02,
            retransmit_timeout_ns: 4_000_000,
            max_retries: 4,
            contention_max_ns: 500_000,
        }
    }
}

impl WirelessNoise {
    /// Sample the extra delay this packet suffers in the access network.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut d = if self.contention_max_ns > 0 {
            rng.gen_range(0..=self.contention_max_ns)
        } else {
            0
        };
        if self.burst_prob > 0.0 && rng.gen_bool(self.burst_prob.clamp(0.0, 1.0)) {
            let retries = rng.gen_range(1..=self.max_retries.max(1));
            d += u64::from(retries) * self.retransmit_timeout_ns;
        }
        d
    }
}

/// Hypervisor scheduling noise on a cloud VM: exponential delay spikes.
#[derive(Debug, Clone, Copy)]
pub struct HypervisorNoise {
    /// Mean scheduling delay, ns.
    pub mean_ns: u64,
    /// Hard cap, ns (a vCPU does get scheduled eventually).
    pub cap_ns: u64,
}

impl Default for HypervisorNoise {
    fn default() -> Self {
        HypervisorNoise {
            mean_ns: 300_000,
            cap_ns: 10_000_000,
        }
    }
}

impl HypervisorNoise {
    /// Sample the extra delay the VM adds to a send or receive timestamp.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let d = (-u.ln() * self.mean_ns as f64) as u64;
        d.min(self.cap_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wireless_bursts_are_quantized_by_rto() {
        let w = WirelessNoise {
            burst_prob: 1.0,
            retransmit_timeout_ns: 4_000_000,
            max_retries: 4,
            contention_max_ns: 0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let d = w.sample(&mut rng);
            assert_eq!(d % 4_000_000, 0);
            assert!((4_000_000..=16_000_000).contains(&d));
        }
    }

    #[test]
    fn wireless_contention_bounded() {
        let w = WirelessNoise {
            burst_prob: 0.0,
            contention_max_ns: 500_000,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            assert!(w.sample(&mut rng) <= 500_000);
        }
    }

    #[test]
    fn wireless_burst_rate_statistics() {
        let w = WirelessNoise::default();
        let mut rng = StdRng::seed_from_u64(3);
        let bursts = (0..50_000)
            .filter(|_| w.sample(&mut rng) >= w.retransmit_timeout_ns)
            .count();
        let rate = bursts as f64 / 50_000.0;
        assert!((rate - 0.02).abs() < 0.005, "burst rate {rate}");
    }

    #[test]
    fn hypervisor_mean_and_cap() {
        let h = HypervisorNoise {
            mean_ns: 300_000,
            cap_ns: 10_000_000,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<u64> = (0..50_000).map(|_| h.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| s <= 10_000_000));
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - 300_000.0).abs() < 10_000.0, "mean {mean}");
    }

    #[test]
    fn edge_noise_dwarfs_tango_jitter() {
        // The quantitative heart of the §2.2 argument: host-side noise is
        // orders of magnitude above the 10 µs jitter of the best path.
        let w = WirelessNoise::default();
        let mut rng = StdRng::seed_from_u64(5);
        let mean = (0..20_000).map(|_| w.sample(&mut rng)).sum::<u64>() as f64 / 20_000.0;
        assert!(
            mean > 100_000.0,
            "wireless noise mean {mean} should be ≫ 10 µs"
        );
    }
}
