//! Sharded execution of the event loop: partitioning, conservative
//! windows, and the serial/threaded lockstep runners.
//!
//! The node table is split into contiguous shards. Each shard owns its
//! nodes' agents, queues, RNG streams, and outgoing links, and advances
//! through *conservative synchronization windows* in lockstep: a window
//! opens at the global minimum pending-event time `g` and closes at
//! `g + lookahead - 1` (clipped to the run horizon), where the lookahead
//! is the minimum latency of any cross-shard link. No cross-shard packet
//! sent at or after `g` can arrive inside the window, so every shard may
//! process its own window independently; deliveries that cross shards
//! wait in per-destination outboxes and are exchanged at the window
//! barrier — a null-message-free variant of the classic
//! Chandy–Misra–Bryant scheme (the lockstep barrier plays the role of
//! the null messages).
//!
//! Determinism does not depend on the runner: the serial runner and the
//! threaded runner execute the exact same windows over the exact same
//! per-shard state, and all cross-shard traffic is re-ordered by
//! canonical event keys on arrival, so their results are bit-identical.
//! DESIGN.md §11 gives the full argument.

use crate::engine::{LinkTable, NodeTable, QueuedEvent, ShardState, SimShared};
use crate::time::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// How a multi-shard simulation executes. Every mode produces
/// bit-identical results; the choice only trades wall-clock for cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMode {
    /// Threaded when the partition has more than one shard and the host
    /// has more than one core; serial otherwise.
    #[default]
    Auto,
    /// Run every shard's window on the calling thread, in shard order.
    /// The reference implementation — and the profitable choice on a
    /// single-core host, where thread hand-offs only add overhead.
    Serial,
    /// One worker thread per shard, synchronized by barriers.
    Threaded,
}

/// The static partition of the node table: contiguous node ranges (and
/// therefore contiguous link-id ranges, since link ids are minted in
/// from-node order), a node→shard map, and the conservative lookahead.
#[derive(Debug)]
pub(crate) struct Partition {
    /// Shard s owns node indices `[node_starts[s], node_starts[s + 1])`.
    node_starts: Vec<u32>,
    /// Shard s owns dense link ids `[link_starts[s], link_starts[s + 1])`.
    link_starts: Vec<usize>,
    /// node idx → owning shard.
    shard_of: Vec<u32>,
    /// Minimum cross-shard link latency, ns (`u64::MAX` when no link
    /// crosses shards: windows open to the full horizon).
    lookahead_ns: u64,
}

impl Partition {
    /// Partition `nodes` into up to `requested` contiguous shards.
    /// Clamped to `[1, nodes]`; forced to a single shard if any
    /// cross-shard link would have zero minimum latency (zero lookahead
    /// cannot open a window).
    // tango-lint: allow(hot-path-panic) runs once at sim construction, not per event; node_starts has shards+1 entries and shard_of/link ids are bounded by the tables that minted them
    pub(crate) fn build(nodes: &NodeTable, links: &LinkTable, requested: usize) -> Partition {
        let n = nodes.len();
        // Prefix sums of out-degrees: link ids are minted in from-node
        // order, so node range [a, b) owns link ids [off[a], off[b]).
        let mut link_off = Vec::with_capacity(n + 1);
        link_off.push(0usize);
        for list in &links.adj {
            let prev = *link_off.last().unwrap_or(&0);
            link_off.push(prev + list.len());
        }
        let mut shards = requested.clamp(1, n.max(1));
        loop {
            let node_starts: Vec<u32> = (0..=shards).map(|s| (s * n / shards) as u32).collect();
            let mut shard_of = vec![0u32; n];
            for s in 0..shards {
                for idx in node_starts[s]..node_starts[s + 1] {
                    shard_of[idx as usize] = s as u32;
                }
            }
            let mut lookahead_ns = u64::MAX;
            for (from_idx, list) in links.adj.iter().enumerate() {
                for &(to_idx, link_id) in list {
                    if shard_of[from_idx] == shard_of[to_idx as usize] {
                        continue;
                    }
                    if let Some(p) = links.profiles.get(link_id as usize) {
                        lookahead_ns = lookahead_ns.min(p.min_delay_ns());
                    }
                }
            }
            if lookahead_ns == 0 && shards > 1 {
                // A zero-latency link crosses shards: no window could
                // safely contain both ends. Fall back to one shard (still
                // bit-identical — just not parallel).
                shards = 1;
                continue;
            }
            let link_starts = node_starts
                .iter()
                .map(|&i| link_off.get(i as usize).copied().unwrap_or(0))
                .collect();
            return Partition {
                node_starts,
                link_starts,
                shard_of,
                lookahead_ns,
            };
        }
    }

    /// Number of shards.
    pub(crate) fn len(&self) -> usize {
        self.node_starts.len().saturating_sub(1)
    }

    /// The node-index range `[base, end)` of shard `s`.
    pub(crate) fn node_range(&self, s: usize) -> (u32, u32) {
        let base = self.node_starts.get(s).copied().unwrap_or(0);
        let end = self.node_starts.get(s + 1).copied().unwrap_or(base);
        (base, end)
    }

    /// The dense-link-id range `[base, end)` of shard `s`.
    pub(crate) fn link_range(&self, s: usize) -> (usize, usize) {
        let base = self.link_starts.get(s).copied().unwrap_or(0);
        let end = self.link_starts.get(s + 1).copied().unwrap_or(base);
        (base, end)
    }

    /// The shard owning node index `idx`. Total: out-of-range indices
    /// (including the `NO_NODE` sentinel) map to shard 0, which treats
    /// them as agent-less nodes exactly like the unsharded engine did.
    pub(crate) fn shard_of(&self, idx: u32) -> usize {
        self.shard_of.get(idx as usize).map_or(0, |&s| s as usize)
    }

    /// The conservative lookahead, ns.
    pub(crate) fn lookahead_ns(&self) -> u64 {
        self.lookahead_ns
    }
}

/// The global minimum pending-event time across shards, as raw ns
/// (`u64::MAX` when every queue is empty).
fn global_min_ns(shards: &[ShardState]) -> u64 {
    shards
        .iter()
        .filter_map(|s| s.next_time())
        .map(|t| t.as_ns())
        .min()
        .unwrap_or(u64::MAX)
}

/// Run the lockstep window loop on the calling thread: every shard's
/// window executes in shard order, then outboxes are exchanged. This is
/// the reference semantics the threaded runner must (and does) match
/// bit-for-bit. Returns events processed.
// tango-lint: allow(hot-path-panic) src/dst iterate 0..shards.len(), so every index is in bounds
pub(crate) fn run_serial(shards: &mut [ShardState], shared: &SimShared, until: SimTime) -> u64 {
    let la = shared.part.lookahead_ns();
    let n = shards.len();
    let mut processed = 0u64;
    loop {
        let g = global_min_ns(shards);
        if g == u64::MAX || g > until.as_ns() {
            break;
        }
        let h = SimTime(g).conservative_window_end(la, until);
        for shard in shards.iter_mut() {
            processed += shard.run_window(shared, h);
        }
        for src in 0..n {
            for dst in 0..n {
                if src == dst || shards[src].outbox_is_empty(dst) {
                    continue;
                }
                let moved = shards[src].take_outbox(dst);
                shards[dst].receive(moved);
            }
        }
    }
    processed
}

/// Run the lockstep window loop with one worker thread per shard.
///
/// Synchronization per round: a barrier opens the round, each worker
/// reads the window opening `g` from the current ping-pong slot and
/// resets the *next* slot to `u64::MAX`; workers run their windows and
/// publish outboxes into per-(src, dst) mailbox cells; a second barrier
/// closes the window, after which each worker drains its incoming cells
/// (heap-pushed, so canonical keys restore the total order) and
/// `fetch_min`s its next pending time into the next slot. The barriers
/// provide all cross-thread ordering, so relaxed atomics suffice.
///
/// Identical to [`run_serial`] by construction: the same windows execute
/// over the same per-shard state, and nothing a shard computes depends on
/// when — within a round — other shards run.
// tango-lint: allow(hot-path-panic) slots has 2 entries indexed mod 2 and cells is n×n indexed by shard ids < n; the join().expect deliberately re-raises a worker panic rather than reporting a truncated run as success
pub(crate) fn run_threaded(shards: &mut [ShardState], shared: &SimShared, until: SimTime) -> u64 {
    let n = shards.len();
    let la = shared.part.lookahead_ns();
    let until_ns = until.as_ns();
    let slots = [
        AtomicU64::new(global_min_ns(shards)),
        AtomicU64::new(u64::MAX),
    ];
    let barrier = Barrier::new(n);
    let cells: Vec<Vec<Mutex<Vec<QueuedEvent>>>> = (0..n)
        .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    // tango-lint: allow(thread-spawn) this is the approved shard runner: workers touch disjoint ShardStates, all cross-thread data flows through the barrier-ordered mailbox cells, and determinism is proven against run_serial by the equivalence tests
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for shard in shards.iter_mut() {
            let barrier = &barrier;
            let slots = &slots;
            let cells = &cells;
            handles.push(scope.spawn(move || {
                let i = shard.index;
                let mut processed = 0u64;
                let mut round = 0usize;
                loop {
                    barrier.wait();
                    let g = slots[round % 2].load(Ordering::Relaxed);
                    slots[(round + 1) % 2].store(u64::MAX, Ordering::Relaxed);
                    if g == u64::MAX || g > until_ns {
                        break;
                    }
                    let h = SimTime(g).conservative_window_end(la, until);
                    processed += shard.run_window(shared, h);
                    for (dst, row) in cells[i].iter().enumerate() {
                        if dst != i && !shard.outbox_is_empty(dst) {
                            let moved = shard.take_outbox(dst);
                            if let Ok(mut cell) = row.lock() {
                                cell.extend(moved);
                            }
                        }
                    }
                    barrier.wait();
                    for (src, row) in cells.iter().enumerate() {
                        if src == i {
                            continue;
                        }
                        if let Some(cell) = row.get(i) {
                            if let Ok(mut inbox) = cell.lock() {
                                shard.receive_drain(&mut inbox);
                            }
                        }
                    }
                    if let Some(t) = shard.next_time() {
                        slots[(round + 1) % 2].fetch_min(t.as_ns(), Ordering::Relaxed);
                    }
                    round += 1;
                }
                processed
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_topology::{AsId, AsKind, AsNode, DirectionProfile, LinkProfile, Topology};

    fn tables(t: &Topology) -> (NodeTable, LinkTable) {
        let nodes = NodeTable::build(t);
        let links = LinkTable::build(t, &nodes);
        (nodes, links)
    }

    fn line(n: u32, delay_ns: u64) -> Topology {
        let mut t = Topology::new();
        for id in 1..=n {
            t.add_node(AsNode::new(id, AsKind::Transit, format!("{id}")))
                .unwrap();
        }
        for id in 1..n {
            t.add_peering(
                AsId(id),
                AsId(id + 1),
                LinkProfile::symmetric(DirectionProfile::constant(delay_ns)),
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn partition_ranges_tile_the_tables() {
        let t = line(7, 1_000_000);
        let (nodes, links) = tables(&t);
        for requested in 1..=9 {
            let p = Partition::build(&nodes, &links, requested);
            assert!(p.len() >= 1 && p.len() <= 7);
            let mut node_cursor = 0u32;
            let mut link_cursor = 0usize;
            for s in 0..p.len() {
                let (nb, ne) = p.node_range(s);
                let (lb, le) = p.link_range(s);
                assert_eq!(nb, node_cursor, "node ranges must tile");
                assert_eq!(lb, link_cursor, "link ranges must tile");
                assert!(ne >= nb && le >= lb);
                for idx in nb..ne {
                    assert_eq!(p.shard_of(idx), s);
                }
                node_cursor = ne;
                link_cursor = le;
            }
            assert_eq!(node_cursor as usize, nodes.len());
            assert_eq!(link_cursor, links.profiles.len());
        }
    }

    #[test]
    fn requested_shards_clamp_to_node_count() {
        let t = line(3, 1_000_000);
        let (nodes, links) = tables(&t);
        assert_eq!(Partition::build(&nodes, &links, 0).len(), 1);
        assert_eq!(Partition::build(&nodes, &links, 64).len(), 3);
    }

    #[test]
    fn lookahead_is_min_cross_shard_latency() {
        // 1 ms hops: min_delay is the base/2 clamp floor = 500 µs.
        let t = line(4, 1_000_000);
        let (nodes, links) = tables(&t);
        let p = Partition::build(&nodes, &links, 2);
        assert_eq!(p.lookahead_ns(), 500_000);
    }

    #[test]
    fn zero_lookahead_forces_single_shard() {
        let t = line(4, 0);
        let (nodes, links) = tables(&t);
        let p = Partition::build(&nodes, &links, 4);
        assert_eq!(p.len(), 1, "a zero-latency cross-shard link cannot sync");
    }

    #[test]
    fn disconnected_components_have_infinite_lookahead() {
        // Two 2-node islands, no cross-island link: partitioned at the
        // island boundary, no link crosses shards.
        let mut t = Topology::new();
        for id in 1..=4u32 {
            t.add_node(AsNode::new(id, AsKind::Transit, format!("{id}")))
                .unwrap();
        }
        let lp = || LinkProfile::symmetric(DirectionProfile::constant(1_000_000));
        t.add_peering(AsId(1), AsId(2), lp()).unwrap();
        t.add_peering(AsId(3), AsId(4), lp()).unwrap();
        let (nodes, links) = tables(&t);
        let p = Partition::build(&nodes, &links, 2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.lookahead_ns(), u64::MAX);
    }

    #[test]
    fn sentinel_indices_map_to_shard_zero() {
        let t = line(4, 1_000_000);
        let (nodes, links) = tables(&t);
        let p = Partition::build(&nodes, &links, 2);
        assert_eq!(p.shard_of(u32::MAX), 0);
        assert_eq!(p.shard_of(1_000), 0);
    }
}
