//! Simulated time: integer nanoseconds since simulation start.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time (nanoseconds since t=0).
///
/// Wall-clock-free: experiments that "run for 24 hours" finish in seconds
/// of host time while the statistics see a full day of samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// t = 0.
    pub const ZERO: SimTime = SimTime(0);

    /// From nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// From minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60 * 1_000_000_000)
    }

    /// From hours.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600 * 1_000_000_000)
    }

    /// As nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// As fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional hours (the x-axis of Fig. 4).
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3.6e12
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    pub fn checked_add(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_add(other.0).map(SimTime)
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// End of a conservative synchronization window that opens at `self`:
    /// the last instant a shard may safely process given that no
    /// cross-shard event sent at or after `self` can arrive earlier than
    /// `self + lookahead_ns` (so everything at or before the returned
    /// instant is immune to other shards), clipped to the run horizon
    /// `until`. `lookahead_ns == u64::MAX` means "no cross-shard links at
    /// all" and opens the window to the full horizon.
    pub fn conservative_window_end(self, lookahead_ns: u64, until: SimTime) -> SimTime {
        if lookahead_ns == u64::MAX {
            return until;
        }
        debug_assert!(lookahead_ns > 0, "zero lookahead cannot open a window");
        until.min(self.saturating_add(SimTime(lookahead_ns.saturating_sub(1))))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_us(5).as_ns(), 5_000);
        assert_eq!(SimTime::from_ms(28).as_ns(), 28_000_000);
        assert_eq!(SimTime::from_secs(2).as_ns(), 2_000_000_000);
        assert_eq!(SimTime::from_mins(10).as_ns(), 600_000_000_000);
        assert_eq!(SimTime::from_hours(24).as_hours_f64(), 24.0);
        assert_eq!(SimTime::from_ms(28).as_ms_f64(), 28.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ms(10);
        let b = SimTime::from_ms(3);
        assert_eq!(a + b, SimTime::from_ms(13));
        assert_eq!(a - b, SimTime::from_ms(7));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_ms(13));
        assert_eq!(SimTime(u64::MAX).checked_add(SimTime(1)), None);
    }

    #[test]
    fn conservative_window() {
        let g = SimTime::from_ms(10);
        let until = SimTime::from_secs(1);
        // Lookahead 25 µs: the window is inclusive of g + 24_999 ns.
        assert_eq!(
            g.conservative_window_end(25_000, until),
            SimTime(10_000_000 + 24_999)
        );
        // Clipped to the run horizon.
        assert_eq!(
            g.conservative_window_end(25_000, SimTime::from_ms(10)),
            SimTime::from_ms(10)
        );
        // No cross-shard links: the whole horizon at once.
        assert_eq!(g.conservative_window_end(u64::MAX, until), until);
        // Near-overflow opening times never wrap.
        assert_eq!(
            SimTime(u64::MAX - 1).conservative_window_end(25_000, SimTime(u64::MAX)),
            SimTime(u64::MAX)
        );
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ms(1) < SimTime::from_ms(2));
        assert!(SimTime::ZERO < SimTime(1));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime(12).to_string(), "12ns");
        assert_eq!(SimTime::from_us(3).to_string(), "3.000µs");
        assert_eq!(SimTime::from_ms(28).to_string(), "28.000ms");
        assert_eq!(SimTime::from_secs(3).to_string(), "3.000s");
    }
}
