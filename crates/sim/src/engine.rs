//! The discrete-event core: event queue, agents, link transmission.

use crate::clock::NodeClock;
use crate::fault::{FaultDecision, FaultInjector};
use crate::hash::flow_hash;
use crate::time::SimTime;
use crate::trace::{TraceEvent, TraceKind, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::net::IpAddr;
use tango_net::{Ipv4Packet, Ipv6Packet, PrefixTrie};
use tango_topology::{AsId, Topology};

/// A packet in flight: raw bytes, nothing else. All semantics live in the
/// bytes themselves (smoltcp idiom) — the simulator never peeks beyond
/// what a real router could see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The raw IP packet.
    pub bytes: Vec<u8>,
}

impl Packet {
    /// Wrap raw bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        Packet { bytes }
    }

    /// The destination IP address, if the version nibble and header parse.
    pub fn dst_addr(&self) -> Option<IpAddr> {
        match self.bytes.first().map(|b| b >> 4)? {
            4 => Ipv4Packet::new_checked(&self.bytes[..]).ok().map(|p| IpAddr::V4(p.dst_addr())),
            6 => Ipv6Packet::new_checked(&self.bytes[..]).ok().map(|p| IpAddr::V6(p.dst_addr())),
            _ => None,
        }
    }
}

/// Node behaviour: packets from the network, packets from the local host
/// side, and timers.
pub trait Agent {
    /// A packet arrived from the network.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet);

    /// A packet was handed in from the host side (an application behind
    /// this border). Default: treat like a network packet.
    fn on_host_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        self.on_packet(ctx, pkt);
    }

    /// A scheduled timer fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _tag: u64) {}
}

/// Counters the simulator maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Packets submitted to links.
    pub transmissions: u64,
    /// Packets handed to receiving agents.
    pub deliveries: u64,
    /// Dropped by stochastic link loss.
    pub lost_link: u64,
    /// Dropped by an active outage event.
    pub lost_outage: u64,
    /// Dropped by the fault injector.
    pub lost_fault: u64,
    /// Corrupted (but delivered) by the fault injector.
    pub corrupted: u64,
    /// Transmission requested on a non-existent link.
    pub no_link: u64,
    /// Dropped by a full queue on a capacity-limited link (tail drop).
    pub lost_queue: u64,
    /// Router had no route for a destination.
    pub no_route: u64,
    /// Hop limit exhausted in flight.
    pub ttl_expired: u64,
    /// Timers fired.
    pub timers: u64,
}

enum EventKind {
    Deliver { to: AsId, pkt: Packet },
    HostInject { to: AsId, pkt: Packet },
    Timer { node: AsId, tag: u64 },
}

struct QueuedEvent {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed: same seed + same schedule ⇒ identical run.
    pub seed: u64,
    /// Trace ring capacity (0 disables tracing).
    pub trace_capacity: usize,
    /// Optional global fault injection on every link.
    pub fault: Option<FaultInjector>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { seed: 1, trace_capacity: 0, fault: None }
    }
}

/// The execution context handed to agents. All side effects an agent can
/// have on the world go through here, which keeps event ordering and
/// randomness deterministic.
pub struct Ctx<'a> {
    /// The node this agent runs on.
    pub node: AsId,
    now: SimTime,
    clock: NodeClock,
    topology: &'a Topology,
    rng: &'a mut StdRng,
    fault: Option<FaultInjector>,
    stats: &'a mut SimStats,
    tracer: &'a mut Tracer,
    out: Vec<QueuedEvent>,
    seq: &'a mut u64,
    /// Per-directed-link "busy until" instants (ns) for capacity-limited
    /// links: packets serialize behind the previous departure.
    link_busy: &'a mut BTreeMap<(AsId, AsId), u64>,
}

impl<'a> Ctx<'a> {
    /// Current simulated time (global truth — agents implementing the
    /// Tango data plane must use [`Ctx::local_ns`] instead, as a real
    /// switch has no access to true time).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's local clock reading, nanoseconds.
    pub fn local_ns(&self) -> u64 {
        self.clock.local_ns(self.now)
    }

    /// Deterministic randomness for agent-level decisions.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// The topology (read-only; e.g. for neighbor queries).
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    fn trace(&mut self, kind: TraceKind) {
        self.tracer.record(TraceEvent { time: self.now, node: self.node, kind });
    }

    /// Transmit a packet to an adjacent node. Samples loss, event
    /// effects, fault injection, ECMP lane, and delay; schedules delivery.
    pub fn transmit(&mut self, to: AsId, pkt: Packet) {
        let from = self.node;
        let Some(profile) = self.topology.direction_profile(from, to) else {
            self.stats.no_link += 1;
            self.trace(TraceKind::NoLink);
            return;
        };
        self.stats.transmissions += 1;
        self.trace(TraceKind::Tx { to });
        if profile.sample_loss(self.rng) {
            self.stats.lost_link += 1;
            self.trace(TraceKind::LossLink);
            return;
        }
        // Active wide-area events on this directed hop.
        let mut shift: i64 = 0;
        for ev in self.topology.active_events(from, to, self.now.as_ns()) {
            match ev.sample_effect(self.now.as_ns(), self.rng) {
                Some(d) => shift += d,
                None => {
                    self.stats.lost_outage += 1;
                    self.trace(TraceKind::LossOutage);
                    return;
                }
            }
        }
        let mut bytes = pkt.bytes;
        if let Some(f) = self.fault {
            match f.apply(self.rng, &mut bytes) {
                FaultDecision::Drop => {
                    self.stats.lost_fault += 1;
                    self.trace(TraceKind::LossFault);
                    return;
                }
                FaultDecision::Corrupted => {
                    self.stats.corrupted += 1;
                    self.trace(TraceKind::Corrupt);
                }
                FaultDecision::Pass => {}
            }
        }
        // Capacity model: packets serialize on finite-capacity links,
        // waiting behind earlier departures; overlong waits tail-drop.
        let mut queue_delay = 0u64;
        if profile.capacity_bps.is_some() {
            let tx = profile.tx_time_ns(bytes.len());
            let busy = self.link_busy.entry((from, to)).or_insert(0);
            let start = (*busy).max(self.now.as_ns());
            let wait = start - self.now.as_ns();
            if wait > profile.max_queue_ns {
                self.stats.lost_queue += 1;
                self.trace(TraceKind::LossQueue);
                return;
            }
            *busy = start + tx;
            queue_delay = wait + tx;
        }
        let hash = flow_hash(&bytes);
        let delay = profile.sample_delay(self.rng, hash, shift) + queue_delay;
        let time = self.now + SimTime(delay);
        // A link that goes dark mid-flight also kills the packets already
        // committed to it: if the *arrival* instant falls inside an
        // outage window on this hop, the packet never makes it off the
        // wire.
        let arrives_in_outage = self
            .topology
            .active_events(from, to, time.as_ns())
            .iter()
            .any(|ev| matches!(ev.kind, tango_topology::EventKind::Outage));
        if arrives_in_outage {
            self.stats.lost_outage += 1;
            self.trace(TraceKind::LossOutage);
            return;
        }
        *self.seq += 1;
        self.out.push(QueuedEvent {
            time,
            seq: *self.seq,
            kind: EventKind::Deliver { to, pkt: Packet::new(bytes) },
        });
    }

    /// Schedule a timer on this node after `delay`.
    pub fn schedule_timer(&mut self, delay: SimTime, tag: u64) {
        *self.seq += 1;
        self.out.push(QueuedEvent {
            time: self.now + delay,
            seq: *self.seq,
            kind: EventKind::Timer { node: self.node, tag },
        });
    }

    /// Count a routing-table miss (used by router agents).
    pub fn count_no_route(&mut self) {
        self.stats.no_route += 1;
        self.trace(TraceKind::NoRoute);
    }

    /// Count a hop-limit expiry (used by router agents).
    pub fn count_ttl_expired(&mut self) {
        self.stats.ttl_expired += 1;
        self.trace(TraceKind::TtlExpired);
    }
}

/// The deterministic discrete-event network simulator.
pub struct NetworkSim {
    topology: Topology,
    clocks: BTreeMap<AsId, NodeClock>,
    agents: BTreeMap<AsId, Box<dyn Agent>>,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    fault: Option<FaultInjector>,
    stats: SimStats,
    tracer: Tracer,
    link_busy: BTreeMap<(AsId, AsId), u64>,
}

impl NetworkSim {
    /// Build a simulator over a topology.
    pub fn new(topology: Topology, config: SimConfig) -> Self {
        NetworkSim {
            topology,
            clocks: BTreeMap::new(),
            agents: BTreeMap::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(config.seed),
            fault: config.fault,
            stats: SimStats::default(),
            tracer: Tracer::new(config.trace_capacity),
            link_busy: BTreeMap::new(),
        }
    }

    /// Set a node's clock (default: synchronized).
    pub fn set_clock(&mut self, node: AsId, clock: NodeClock) {
        self.clocks.insert(node, clock);
    }

    /// Install a node's agent (replacing any previous one).
    pub fn set_agent(&mut self, node: AsId, agent: Box<dyn Agent>) {
        self.agents.insert(node, agent);
    }

    /// Schedule a packet to enter `node` from its host side at `time`.
    pub fn schedule_host_packet(&mut self, time: SimTime, node: AsId, pkt: Packet) {
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent {
            time,
            seq: self.seq,
            kind: EventKind::HostInject { to: node, pkt },
        }));
    }

    /// Schedule a timer for `node` at absolute `time` (e.g. the initial
    /// kick of a probe generator).
    pub fn schedule_timer_at(&mut self, time: SimTime, node: AsId, tag: u64) {
        self.seq += 1;
        self.queue
            .push(Reverse(QueuedEvent { time, seq: self.seq, kind: EventKind::Timer { node, tag } }));
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Simulation counters.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The trace ring.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Run until the queue is empty or simulated time exceeds `until`.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.time > until {
                break;
            }
            let Reverse(event) = self.queue.pop().expect("peeked");
            debug_assert!(event.time >= self.now, "time must be monotonic");
            self.now = event.time;
            self.dispatch(event.kind);
            processed += 1;
        }
        // Advance the clock to the horizon even if the queue went quiet.
        if self.now < until {
            self.now = until;
        }
        processed
    }

    /// True if no events are pending.
    pub fn idle(&self) -> bool {
        self.queue.is_empty()
    }

    fn dispatch(&mut self, kind: EventKind) {
        let (node, call): (AsId, u8) = match &kind {
            EventKind::Deliver { to, .. } => (*to, 0),
            EventKind::HostInject { to, .. } => (*to, 1),
            EventKind::Timer { node, .. } => (*node, 2),
        };
        let _ = call;
        let Some(mut agent) = self.agents.remove(&node) else {
            // No agent: the packet/timer evaporates (counted as no_route —
            // a node without behaviour cannot forward).
            if !matches!(kind, EventKind::Timer { .. }) {
                self.stats.no_route += 1;
            }
            return;
        };
        let clock = self.clocks.get(&node).copied().unwrap_or_default();
        let mut ctx = Ctx {
            node,
            now: self.now,
            clock,
            topology: &self.topology,
            rng: &mut self.rng,
            fault: self.fault,
            stats: &mut self.stats,
            tracer: &mut self.tracer,
            out: Vec::new(),
            seq: &mut self.seq,
            link_busy: &mut self.link_busy,
        };
        match kind {
            EventKind::Deliver { pkt, .. } => {
                ctx.stats.deliveries += 1;
                ctx.trace(TraceKind::Rx);
                agent.on_packet(&mut ctx, pkt);
            }
            EventKind::HostInject { pkt, .. } => {
                agent.on_host_packet(&mut ctx, pkt);
            }
            EventKind::Timer { tag, .. } => {
                ctx.stats.timers += 1;
                ctx.trace(TraceKind::Timer { tag });
                agent.on_timer(&mut ctx, tag);
            }
        }
        let out = std::mem::take(&mut ctx.out);
        drop(ctx);
        for ev in out {
            self.queue.push(Reverse(ev));
        }
        self.agents.insert(node, agent);
    }
}

/// A plain IP router: longest-prefix-match forwarding with hop-limit
/// decrement. The behaviour of every non-Tango node (Vultr borders and
/// transit ASes).
pub struct RouterAgent {
    id: AsId,
    table: PrefixTrie<AsId>,
}

impl RouterAgent {
    /// A router with the given forwarding table (usually built by
    /// `tango_bgp::BgpEngine::forwarding_table`).
    pub fn new(id: AsId, table: PrefixTrie<AsId>) -> Self {
        RouterAgent { id, table }
    }

    /// Replace the forwarding table (BGP re-convergence).
    pub fn set_table(&mut self, table: PrefixTrie<AsId>) {
        self.table = table;
    }

    /// Decrement TTL/hop-limit in place. Returns false if expired.
    fn decrement_ttl(bytes: &mut [u8]) -> bool {
        match bytes.first().map(|b| b >> 4) {
            Some(4) if bytes.len() >= 20 => {
                if bytes[8] <= 1 {
                    return false;
                }
                bytes[8] -= 1;
                // Recompute the IPv4 header checksum.
                bytes[10] = 0;
                bytes[11] = 0;
                let ck = tango_net::checksum::checksum(&bytes[..20]);
                bytes[10..12].copy_from_slice(&ck.to_be_bytes());
                true
            }
            Some(6) if bytes.len() >= 40 => {
                if bytes[7] <= 1 {
                    return false;
                }
                bytes[7] -= 1;
                true
            }
            _ => false,
        }
    }
}

impl Agent for RouterAgent {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, mut pkt: Packet) {
        let Some(dst) = pkt.dst_addr() else {
            ctx.count_no_route();
            return;
        };
        let Some((_, &next)) = self.table.longest_match(dst) else {
            ctx.count_no_route();
            return;
        };
        if next == self.id {
            // Locally destined at a plain router: nothing behind it.
            ctx.count_no_route();
            return;
        }
        if !Self::decrement_ttl(&mut pkt.bytes) {
            ctx.count_ttl_expired();
            return;
        }
        ctx.transmit(next, pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use tango_net::{IpCidr, Ipv6Packet, Ipv6Repr};
    use tango_topology::{AsKind, AsNode, DirectionProfile, LinkProfile};
    use tango_topology::Topology;

    fn ipv6_packet(dst: &str, hop_limit: u8) -> Packet {
        let repr = Ipv6Repr {
            src_addr: "2001:db8:aaaa::1".parse().unwrap(),
            dst_addr: dst.parse().unwrap(),
            next_header: 17,
            payload_len: 0,
            hop_limit,
            traffic_class: 0,
            flow_label: 0,
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Ipv6Packet::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        Packet::new(buf)
    }

    /// Line topology 1 -- 2 -- 3 with constant 1 ms hops.
    fn line() -> Topology {
        let mut t = Topology::new();
        for id in 1..=3u32 {
            t.add_node(AsNode::new(id, AsKind::Transit, format!("{id}"))).unwrap();
        }
        let lp = || LinkProfile::symmetric(DirectionProfile::constant(1_000_000));
        t.add_peering(AsId(1), AsId(2), lp()).unwrap();
        t.add_peering(AsId(2), AsId(3), lp()).unwrap();
        t
    }

    struct SinkAgent {
        received: Arc<AtomicU64>,
        last_local_ns: Arc<AtomicU64>,
    }

    impl Agent for SinkAgent {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _pkt: Packet) {
            self.received.fetch_add(1, Ordering::SeqCst);
            self.last_local_ns.store(ctx.local_ns(), Ordering::SeqCst);
        }
    }

    fn router_table(entries: &[(&str, u32)]) -> PrefixTrie<AsId> {
        let mut t = PrefixTrie::new();
        for (p, n) in entries {
            t.insert(p.parse::<IpCidr>().unwrap(), AsId(*n));
        }
        t
    }

    fn build_line_sim() -> (NetworkSim, Arc<AtomicU64>, Arc<AtomicU64>) {
        let mut sim = NetworkSim::new(line(), SimConfig { trace_capacity: 64, ..Default::default() });
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(AsId(1), router_table(&[("2001:db8:3::/48", 2)]))),
        );
        sim.set_agent(
            AsId(2),
            Box::new(RouterAgent::new(AsId(2), router_table(&[("2001:db8:3::/48", 3)]))),
        );
        let received = Arc::new(AtomicU64::new(0));
        let local = Arc::new(AtomicU64::new(0));
        sim.set_agent(
            AsId(3),
            Box::new(SinkAgent { received: received.clone(), last_local_ns: local.clone() }),
        );
        (sim, received, local)
    }

    #[test]
    fn packet_crosses_two_hops_with_exact_delay() {
        let (mut sim, received, _) = build_line_sim();
        sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:3::1", 64));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(received.load(Ordering::SeqCst), 1);
        // Delivered after exactly 2 ms (two constant 1 ms hops).
        let rx_events: Vec<_> = sim
            .tracer()
            .events()
            .into_iter()
            .filter(|e| e.kind == TraceKind::Rx && e.node == AsId(3))
            .collect();
        assert_eq!(rx_events.len(), 1);
        assert_eq!(rx_events[0].time, SimTime::from_ms(2));
        assert_eq!(sim.stats().deliveries, 2); // at node 2 and node 3
        assert_eq!(sim.stats().transmissions, 2);
    }

    #[test]
    fn receiver_clock_offset_shows_in_local_time() {
        let (mut sim, _, local) = build_line_sim();
        sim.set_clock(AsId(3), NodeClock::with_offset_ns(500));
        sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:3::1", 64));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(local.load(Ordering::SeqCst), 2_000_500);
    }

    #[test]
    fn no_route_counted() {
        let (mut sim, received, _) = build_line_sim();
        sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:99::1", 64));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(received.load(Ordering::SeqCst), 0);
        assert_eq!(sim.stats().no_route, 1);
    }

    #[test]
    fn ttl_expiry_stops_packet() {
        let (mut sim, received, _) = build_line_sim();
        // hop_limit 1: node 1 decrements -> expires before transmit.
        sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:3::1", 1));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(received.load(Ordering::SeqCst), 0);
        assert_eq!(sim.stats().ttl_expired, 1);
    }

    #[test]
    fn forwarding_loop_burns_ttl_not_cpu() {
        // 1 and 2 point at each other: the packet must die by TTL.
        let mut sim = NetworkSim::new(line(), SimConfig::default());
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(AsId(1), router_table(&[("2001:db8:3::/48", 2)]))),
        );
        sim.set_agent(
            AsId(2),
            Box::new(RouterAgent::new(AsId(2), router_table(&[("2001:db8:3::/48", 1)]))),
        );
        sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:3::1", 16));
        sim.run_until(SimTime::from_secs(10));
        assert!(sim.idle());
        assert_eq!(sim.stats().ttl_expired, 1);
        assert!(sim.stats().transmissions <= 16);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut t = line();
            // Add jitter so randomness actually matters.
            t = {
                let mut t2 = Topology::new();
                for id in 1..=3u32 {
                    t2.add_node(AsNode::new(id, AsKind::Transit, format!("{id}"))).unwrap();
                }
                let lp = || {
                    LinkProfile::symmetric(
                        DirectionProfile::constant(1_000_000).with_jitter(
                            tango_topology::JitterModel::Gaussian { sigma_ns: 100_000 },
                        ),
                    )
                };
                t2.add_peering(AsId(1), AsId(2), lp()).unwrap();
                t2.add_peering(AsId(2), AsId(3), lp()).unwrap();
                let _ = t;
                t2
            };
            let mut sim = NetworkSim::new(t, SimConfig { seed, trace_capacity: 256, ..Default::default() });
            sim.set_agent(
                AsId(1),
                Box::new(RouterAgent::new(AsId(1), router_table(&[("2001:db8:3::/48", 2)]))),
            );
            sim.set_agent(
                AsId(2),
                Box::new(RouterAgent::new(AsId(2), router_table(&[("2001:db8:3::/48", 3)]))),
            );
            sim.set_agent(AsId(3), Box::new(RouterAgent::new(AsId(3), PrefixTrie::new())));
            for i in 0..50 {
                sim.schedule_host_packet(
                    SimTime::from_ms(i),
                    AsId(1),
                    ipv6_packet("2001:db8:3::1", 64),
                );
            }
            sim.run_until(SimTime::from_secs(2));
            sim.tracer().events()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn link_loss_is_counted() {
        let mut t = Topology::new();
        for id in 1..=2u32 {
            t.add_node(AsNode::new(id, AsKind::Transit, format!("{id}"))).unwrap();
        }
        t.add_peering(
            AsId(1),
            AsId(2),
            LinkProfile::symmetric(DirectionProfile::constant(1_000).with_loss(1.0)),
        )
        .unwrap();
        let mut sim = NetworkSim::new(t, SimConfig::default());
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(AsId(1), router_table(&[("::/0", 2)]))),
        );
        sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:3::1", 64));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().lost_link, 1);
        assert_eq!(sim.stats().deliveries, 0);
    }

    #[test]
    fn fault_injector_drop_all() {
        let mut sim = NetworkSim::new(
            line(),
            SimConfig { fault: Some(FaultInjector::new(1.0, 0.0)), ..Default::default() },
        );
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(AsId(1), router_table(&[("::/0", 2)]))),
        );
        sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:3::1", 64));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().lost_fault, 1);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerAgent {
            fired: Arc<AtomicU64>,
        }
        impl Agent for TimerAgent {
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
                // Tags must arrive 1, 2, 3... (scheduled at 1 ms spacing).
                let prev = self.fired.fetch_add(1, Ordering::SeqCst);
                assert_eq!(prev + 1, tag);
                if tag < 5 {
                    ctx.schedule_timer(SimTime::from_ms(1), tag + 1);
                }
            }
        }
        let fired = Arc::new(AtomicU64::new(0));
        let mut sim = NetworkSim::new(line(), SimConfig::default());
        sim.set_agent(AsId(1), Box::new(TimerAgent { fired: fired.clone() }));
        sim.schedule_timer_at(SimTime::from_ms(1), AsId(1), 1);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(fired.load(Ordering::SeqCst), 5);
        assert_eq!(sim.stats().timers, 5);
    }

    #[test]
    fn run_until_advances_clock_when_idle() {
        let mut sim = NetworkSim::new(line(), SimConfig::default());
        sim.run_until(SimTime::from_secs(7));
        assert_eq!(sim.now(), SimTime::from_secs(7));
        assert!(sim.idle());
    }

    #[test]
    fn capacity_serializes_back_to_back_packets() {
        // 100 Mbit/s link: a 1250 B packet occupies it for 100 µs. Three
        // packets injected at the same instant arrive 100 µs apart.
        let mut t = Topology::new();
        for id in 1..=2u32 {
            t.add_node(AsNode::new(id, AsKind::Transit, format!("{id}"))).unwrap();
        }
        t.add_peering(
            AsId(1),
            AsId(2),
            LinkProfile::symmetric(
                DirectionProfile::constant(1_000_000).with_capacity(100_000_000, u64::MAX),
            ),
        )
        .unwrap();
        let mut sim = NetworkSim::new(t, SimConfig { trace_capacity: 64, ..Default::default() });
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(AsId(1), router_table(&[("::/0", 2)]))),
        );
        sim.set_agent(AsId(2), Box::new(RouterAgent::new(AsId(2), PrefixTrie::new())));
        // Build a 1250-byte packet (payload pads the 40 B header).
        let repr = Ipv6Repr {
            src_addr: "2001:db8:aaaa::1".parse().unwrap(),
            dst_addr: "2001:db8:3::1".parse().unwrap(),
            next_header: 17,
            payload_len: 1210,
            hop_limit: 64,
            traffic_class: 0,
            flow_label: 0,
        };
        let mut pkt = vec![0u8; repr.total_len()];
        let mut view = Ipv6Packet::new_unchecked(&mut pkt[..]);
        repr.emit(&mut view).unwrap();
        for _ in 0..3 {
            sim.schedule_host_packet(SimTime::ZERO, AsId(1), Packet::new(pkt.clone()));
        }
        sim.run_until(SimTime::from_secs(1));
        let arrivals: Vec<u64> = sim
            .tracer()
            .events()
            .into_iter()
            .filter(|e| e.kind == TraceKind::Rx && e.node == AsId(2))
            .map(|e| e.time.as_ns())
            .collect();
        assert_eq!(arrivals.len(), 3);
        // 1 ms propagation + k × 100 µs serialization.
        assert_eq!(arrivals[0], 1_100_000);
        assert_eq!(arrivals[1], 1_200_000);
        assert_eq!(arrivals[2], 1_300_000);
    }

    #[test]
    fn queue_tail_drop_kicks_in() {
        let mut t = Topology::new();
        for id in 1..=2u32 {
            t.add_node(AsNode::new(id, AsKind::Transit, format!("{id}"))).unwrap();
        }
        // Queue cap of 150 µs: the 3rd simultaneous packet (wait 200 µs)
        // is dropped.
        t.add_peering(
            AsId(1),
            AsId(2),
            LinkProfile::symmetric(
                DirectionProfile::constant(1_000_000).with_capacity(100_000_000, 150_000),
            ),
        )
        .unwrap();
        let mut sim = NetworkSim::new(t, SimConfig::default());
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(AsId(1), router_table(&[("::/0", 2)]))),
        );
        sim.set_agent(AsId(2), Box::new(RouterAgent::new(AsId(2), PrefixTrie::new())));
        let repr = Ipv6Repr {
            src_addr: "2001:db8:aaaa::1".parse().unwrap(),
            dst_addr: "2001:db8:3::1".parse().unwrap(),
            next_header: 17,
            payload_len: 1210,
            hop_limit: 64,
            traffic_class: 0,
            flow_label: 0,
        };
        let mut pkt = vec![0u8; repr.total_len()];
        let mut view = Ipv6Packet::new_unchecked(&mut pkt[..]);
        repr.emit(&mut view).unwrap();
        for _ in 0..4 {
            sim.schedule_host_packet(SimTime::ZERO, AsId(1), Packet::new(pkt.clone()));
        }
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().lost_queue, 2, "3rd and 4th exceed the cap");
        assert_eq!(sim.stats().deliveries, 2);
    }

    #[test]
    fn infinite_capacity_links_never_queue() {
        let (mut sim, received, _) = build_line_sim();
        for _ in 0..100 {
            sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:3::1", 64));
        }
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(received.load(Ordering::SeqCst), 100);
        assert_eq!(sim.stats().lost_queue, 0);
        // All arrive at the same instant: no serialization.
        assert!(sim.now() >= SimTime::from_ms(2));
    }

    #[test]
    fn outage_kills_packets_already_in_flight() {
        use tango_topology::{EventKind as TEventKind, LinkEvent, TimeWindow};
        // 1 ms hop; outage window [0.5 ms, 10 ms). A packet sent at t=0
        // is committed to the wire *before* the outage begins but would
        // arrive at 1 ms — mid-window — so the link going down takes it
        // with it. A packet sent at 10.5 ms, after the link is back,
        // survives.
        let mut t = line();
        t.add_event(LinkEvent {
            from: AsId(1),
            to: AsId(2),
            window: TimeWindow::new(500_000, SimTime::from_ms(10).as_ns()),
            kind: TEventKind::Outage,
        })
        .unwrap();
        let mut sim = NetworkSim::new(t, SimConfig::default());
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(AsId(1), router_table(&[("::/0", 2)]))),
        );
        sim.set_agent(AsId(2), Box::new(RouterAgent::new(AsId(2), PrefixTrie::new())));
        sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:3::1", 64));
        sim.schedule_host_packet(
            SimTime(10_500_000),
            AsId(1),
            ipv6_packet("2001:db8:3::1", 64),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().lost_outage, 1, "in-flight packet dies with the link");
        assert_eq!(sim.stats().deliveries, 1, "post-recovery arrival survives");
    }

    #[test]
    fn outage_event_drops_everything_in_window() {
        use tango_topology::{EventKind as TEventKind, LinkEvent, TimeWindow};
        let mut t = line();
        t.add_event(LinkEvent {
            from: AsId(1),
            to: AsId(2),
            window: TimeWindow::new(0, SimTime::from_ms(10).as_ns()),
            kind: TEventKind::Outage,
        })
        .unwrap();
        let mut sim = NetworkSim::new(t, SimConfig::default());
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(AsId(1), router_table(&[("::/0", 2)]))),
        );
        sim.set_agent(AsId(2), Box::new(RouterAgent::new(AsId(2), PrefixTrie::new())));
        // One packet inside the outage window, one after.
        sim.schedule_host_packet(SimTime::from_ms(5), AsId(1), ipv6_packet("2001:db8:3::1", 64));
        sim.schedule_host_packet(SimTime::from_ms(15), AsId(1), ipv6_packet("2001:db8:3::1", 64));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().lost_outage, 1);
        assert_eq!(sim.stats().deliveries, 1);
    }
}
