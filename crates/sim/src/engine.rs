//! The discrete-event core: event queue, agents, link transmission.
//!
//! ## Fast-path layout
//!
//! The inner loop (pop event → dispatch → transmit) is allocation- and
//! pointer-chase-free by construction:
//!
//! * Node identity is interned at build time: every [`AsId`] in the
//!   topology maps to a dense `NodeIdx` (a `u32` index), and the per-event
//!   tables — agents, clocks, per-directed-link busy horizons — are plain
//!   `Vec`s indexed by it, replacing the seed's `BTreeMap` lookups.
//! * Every directed link gets a dense link id at build time; its delay
//!   profile and scheduled wide-area events are copied into `Vec`-indexed
//!   tables so a transmission touches no tree and allocates nothing.
//! * [`Packet`] owns a buffer with *headroom* so the data plane can
//!   prepend/strip encapsulation in place, and dead packets' buffers are
//!   recycled through a freelist ([`Ctx::recycle`]) instead of hitting
//!   the allocator per packet.
//!
//! ## Sharding
//!
//! The node table is partitioned into contiguous shards (see
//! `crate::shard`), each owning its nodes, their outgoing links, a private
//! heap+staged event queue, per-node RNG streams, and per-shard stats and
//! trace rings. Shards advance in lockstep conservative windows whose
//! width is the minimum cross-shard link latency; cross-shard deliveries
//! travel through per-shard outboxes exchanged at window barriers. Every
//! event carries a canonical `EventKey` `(time, origin, seq)` that is a
//! function of stable identities only, so any shard count — and serial
//! vs. threaded execution — produces bit-identical stats, traces, and
//! telemetry. The determinism argument is written out in DESIGN.md §11.

use crate::clock::NodeClock;
use crate::fault::{FaultDecision, FaultInjector};
use crate::hash::{flow_hash, mix64};
use crate::shard::{self, Partition, ShardMode};
use crate::time::SimTime;
use crate::trace::{TraceEvent, TraceKind, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::net::IpAddr;
use tango_net::{Ipv4Packet, Ipv6Packet, PrefixTrie};
use tango_obs::{Counter, Gauge, Histogram, Registry};
use tango_topology::{AsId, DirectionProfile, EventKind as TopoEventKind, LinkEvent, Topology};
use tango_trace::{DropReason, SpanKey, SpanKind, SpanRing};

/// Sentinel node index for events scheduled against an id that is not in
/// the topology (they dispatch to "no agent", like the seed behaviour).
const NO_NODE: u32 = u32::MAX;

/// Origin id of the external scheduler (`schedule_host_packet`,
/// `schedule_timer_at`). Node `idx` emits with origin `idx + 1`, so
/// external events sort first among same-instant ties — matching the
/// pre-sharding behaviour where pre-scheduled events drew earlier global
/// sequence numbers than anything emitted during the run.
const EXT_ORIGIN: u32 = 0;

/// Cached destination-address parse state of a [`Packet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DstCache {
    /// Not parsed yet (or invalidated by a mutation).
    Unparsed,
    /// Parsed and the header was invalid.
    Invalid,
    /// Parsed successfully.
    Addr(IpAddr),
}

/// A packet in flight: raw bytes, nothing else. All semantics live in the
/// bytes themselves (smoltcp idiom) — the simulator never peeks beyond
/// what a real router could see.
///
/// The bytes sit inside an owned buffer at an offset, so a data plane can
/// reserve *headroom* and prepend/strip encapsulation headers in place
/// instead of rebuilding the wire image. The parsed destination address
/// is cached alongside the bytes (computed once at ingress) and
/// invalidated by any byte mutation, so multi-hop forwarding re-parses
/// nothing.
#[derive(Debug, Clone)]
pub struct Packet {
    buf: Vec<u8>,
    start: usize,
    dst: Cell<DstCache>,
}

impl PartialEq for Packet {
    fn eq(&self, other: &Self) -> bool {
        self.bytes() == other.bytes()
    }
}
impl Eq for Packet {}

impl Packet {
    /// Wrap raw bytes (no headroom).
    pub fn new(bytes: Vec<u8>) -> Self {
        Packet {
            buf: bytes,
            start: 0,
            dst: Cell::new(DstCache::Unparsed),
        }
    }

    /// Copy `bytes` into a fresh buffer with `headroom` writable bytes in
    /// front (room for in-place encapsulation).
    pub fn with_headroom(headroom: usize, bytes: &[u8]) -> Self {
        let mut buf = Vec::with_capacity(headroom + bytes.len());
        buf.resize(headroom, 0);
        buf.extend_from_slice(bytes);
        Packet {
            buf,
            start: headroom,
            dst: Cell::new(DstCache::Unparsed),
        }
    }

    /// A zero-filled packet of `len` visible bytes behind `headroom` —
    /// emit a representation into [`Packet::bytes_mut`] afterwards.
    pub fn alloc(headroom: usize, len: usize) -> Self {
        Packet {
            buf: vec![0u8; headroom + len],
            start: headroom,
            dst: Cell::new(DstCache::Unparsed),
        }
    }

    /// Reuse `buf` (typically from the pool) as an empty packet with
    /// `headroom` bytes reserved in front.
    pub fn from_recycled(mut buf: Vec<u8>, headroom: usize) -> Self {
        buf.clear();
        buf.resize(headroom, 0);
        Packet {
            buf,
            start: headroom,
            dst: Cell::new(DstCache::Unparsed),
        }
    }

    /// The visible packet bytes.
    // tango-lint: allow(hot-path-panic) start <= buf.len() is a Packet invariant upheld by every constructor
    pub fn bytes(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Mutable access to the packet bytes. Invalidates the cached
    /// destination (the caller may rewrite anything).
    // tango-lint: allow(hot-path-panic) start <= buf.len() is a Packet invariant upheld by every constructor
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        self.dst.set(DstCache::Unparsed);
        &mut self.buf[self.start..]
    }

    /// Visible length.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Is the packet empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writable bytes available in front of the packet.
    pub fn headroom(&self) -> usize {
        self.start
    }

    /// Grow the packet `n` bytes at the front (into headroom), returning
    /// the new front. Panics if the headroom is insufficient — callers
    /// must check [`Packet::headroom`] and fall back to a copying path.
    // tango-lint: allow(hot-path-panic) the assert above this slice enforces the documented headroom contract
    pub fn prepend(&mut self, n: usize) -> &mut [u8] {
        assert!(self.start >= n, "prepend past headroom");
        self.start -= n;
        self.dst.set(DstCache::Unparsed);
        &mut self.buf[self.start..]
    }

    /// Drop `n` bytes from the front (they become headroom for a later
    /// re-encapsulation).
    pub fn strip_front(&mut self, n: usize) {
        assert!(n <= self.len(), "strip past end");
        self.start += n;
        self.dst.set(DstCache::Unparsed);
    }

    /// Append bytes at the tail.
    pub fn append(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
        self.dst.set(DstCache::Unparsed);
    }

    /// Shorten the packet to `len` visible bytes.
    pub fn truncate(&mut self, len: usize) {
        assert!(len <= self.len(), "truncate cannot grow");
        self.buf.truncate(self.start + len);
        self.dst.set(DstCache::Unparsed);
    }

    /// Take the backing buffer (for recycling).
    pub fn into_buffer(self) -> Vec<u8> {
        self.buf
    }

    /// The destination IP address, if the version nibble and header
    /// parse. Cached: repeated calls between mutations parse once.
    pub fn dst_addr(&self) -> Option<IpAddr> {
        match self.dst.get() {
            DstCache::Addr(a) => return Some(a),
            DstCache::Invalid => return None,
            DstCache::Unparsed => {}
        }
        let parsed = match self.bytes().first().map(|b| b >> 4) {
            Some(4) => Ipv4Packet::new_checked(self.bytes())
                .ok()
                .map(|p| IpAddr::V4(p.dst_addr())),
            Some(6) => Ipv6Packet::new_checked(self.bytes())
                .ok()
                .map(|p| IpAddr::V6(p.dst_addr())),
            _ => None,
        };
        self.dst.set(match parsed {
            Some(a) => DstCache::Addr(a),
            None => DstCache::Invalid,
        });
        parsed
    }

    /// Decrement the TTL/hop-limit in place (IPv4: also fixes the header
    /// checksum). Returns false if the hop limit is exhausted or the
    /// packet is not IP. Leaves the cached destination intact — this
    /// mutation cannot change the addresses.
    // tango-lint: allow(hot-path-panic) every header offset is guarded by the explicit bytes.len() check on its match arm
    pub fn decrement_hop_limit(&mut self) -> bool {
        let bytes = &mut self.buf[self.start..];
        match bytes.first().map(|b| b >> 4) {
            Some(4) if bytes.len() >= 20 => {
                if bytes[8] <= 1 {
                    return false;
                }
                bytes[8] -= 1;
                // Recompute the IPv4 header checksum.
                bytes[10] = 0;
                bytes[11] = 0;
                let ck = tango_net::checksum::checksum(&bytes[..20]);
                bytes[10..12].copy_from_slice(&ck.to_be_bytes());
                true
            }
            Some(6) if bytes.len() >= 40 => {
                if bytes[7] <= 1 {
                    return false;
                }
                bytes[7] -= 1;
                true
            }
            _ => false,
        }
    }
}

/// Freelist of packet buffers: dead packets hand their allocation back,
/// new packets take one instead of hitting the allocator.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
}

/// Buffers retained at most (beyond this, dead buffers really free).
const POOL_MAX: usize = 4096;

impl BufferPool {
    /// Take a cleared buffer (pool hit) or a fresh one.
    pub fn take(&mut self) -> Vec<u8> {
        self.free.pop().unwrap_or_default()
    }

    /// Return a buffer to the freelist.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        if self.free.len() < POOL_MAX && buf.capacity() > 0 {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Buffers currently parked in the freelist.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// Is the freelist empty?
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }
}

/// Node behaviour: packets from the network, packets from the local host
/// side, and timers.
///
/// `Send` because a shard — and every agent on it — may be handed to a
/// worker thread for the duration of a synchronization window.
pub trait Agent: Send {
    /// A packet arrived from the network.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet);

    /// A packet was handed in from the host side (an application behind
    /// this border). Default: treat like a network packet.
    fn on_host_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        self.on_packet(ctx, pkt);
    }

    /// A scheduled timer fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _tag: u64) {}
}

/// Counters the simulator maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Packets submitted to links.
    pub transmissions: u64,
    /// Packets handed to receiving agents.
    pub deliveries: u64,
    /// Dropped by stochastic link loss.
    pub lost_link: u64,
    /// Dropped by an active outage event.
    pub lost_outage: u64,
    /// Dropped by the fault injector.
    pub lost_fault: u64,
    /// Corrupted (but delivered) by the fault injector.
    pub corrupted: u64,
    /// Transmission requested on a non-existent link.
    pub no_link: u64,
    /// Dropped by a full queue on a capacity-limited link (tail drop).
    pub lost_queue: u64,
    /// Router had no route for a destination.
    pub no_route: u64,
    /// Hop limit exhausted in flight.
    pub ttl_expired: u64,
    /// Timers fired.
    pub timers: u64,
}

impl SimStats {
    /// Add another stats block field-by-field (merging per-shard counts
    /// into the run total — pure sums, so the merge is order-free).
    pub fn accumulate(&mut self, other: &SimStats) {
        self.transmissions += other.transmissions;
        self.deliveries += other.deliveries;
        self.lost_link += other.lost_link;
        self.lost_outage += other.lost_outage;
        self.lost_fault += other.lost_fault;
        self.corrupted += other.corrupted;
        self.no_link += other.no_link;
        self.lost_queue += other.lost_queue;
        self.no_route += other.no_route;
        self.ttl_expired += other.ttl_expired;
        self.timers += other.timers;
    }
}

pub(crate) enum EventKind {
    Deliver { to: u32, pkt: Packet },
    HostInject { to: u32, pkt: Packet },
    Timer { node: u32, tag: u64 },
}

impl EventKind {
    /// The node index this event dispatches to.
    fn dest(&self) -> u32 {
        match self {
            EventKind::Deliver { to, .. } => *to,
            EventKind::HostInject { to, .. } => *to,
            EventKind::Timer { node, .. } => *node,
        }
    }
}

/// The canonical, globally unique ordering key of an event: virtual time,
/// emitting origin (0 = external scheduler, node idx + 1 otherwise), and
/// the origin's private emission sequence number. A pure function of
/// stable identities — independent of shard layout and of the realized
/// execution interleaving — which is the whole determinism argument:
/// sorting any distribution of events by key reproduces one total order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct EventKey {
    pub(crate) time: SimTime,
    pub(crate) origin: u32,
    pub(crate) seq: u64,
}

pub(crate) struct QueuedEvent {
    pub(crate) key: EventKey,
    /// The span key of the dispatch that scheduled this event
    /// ([`SpanKey::NONE`] for externally scheduled roots). Plain data —
    /// it rides along even with the `trace` feature off, so the causal
    /// link survives shard outbox handoffs unconditionally.
    pub(crate) parent: SpanKey,
    pub(crate) kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed: same seed + same schedule ⇒ identical run.
    pub seed: u64,
    /// Trace ring capacity (0 disables tracing).
    pub trace_capacity: usize,
    /// Causal span ring capacity per shard (0 disables span recording).
    /// Sized generously (never wrapping) the merged stream is exactly
    /// the single-shard stream; wrapped it degrades into a flight
    /// recorder of the last-capacity spans.
    pub span_capacity: usize,
    /// Optional global fault injection on every link.
    pub fault: Option<FaultInjector>,
    /// Optional metric registry to publish telemetry into (event
    /// counts, per-link busy time; see `tango-obs`). `None` keeps the
    /// event loop entirely instrumentation-free.
    pub obs: Option<Registry>,
    /// Number of shards to partition the node table into (clamped to
    /// `[1, nodes]`; forced to 1 when a cross-shard link would have zero
    /// lookahead). Results are bit-identical for every value.
    pub shards: usize,
    /// How multi-shard runs execute (serial reference or worker
    /// threads); single-shard runs ignore this. Either way produces the
    /// same bytes — the mode only trades wall-clock for cores.
    pub shard_mode: ShardMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            trace_capacity: 0,
            span_capacity: 0,
            fault: None,
            obs: None,
            shards: 1,
            shard_mode: ShardMode::Auto,
        }
    }
}

/// Pre-registered metric handles for the simulator's own telemetry.
/// Built once at construction; the event loop tracks plain `u64` locals
/// and flushes them here at the end of each [`NetworkSim::run_until`],
/// so instrumentation adds no atomics to the per-event path.
#[derive(Debug)]
struct SimObs {
    ev_deliver: Counter,
    ev_host_inject: Counter,
    ev_timer: Counter,
    run_until_ns: Histogram,
    /// Dense link id → cumulative wire-busy-time gauge.
    link_busy: Vec<Gauge>,
    link_busy_total: Gauge,
    stats: [Gauge; 11],
}

impl SimObs {
    fn new(registry: &Registry, nodes: &NodeTable, links: &LinkTable) -> Self {
        // Recover (from, to) per dense link id from the adjacency index
        // so the gauge names carry the directed hop's AS numbers.
        let mut named: Vec<(u32, String)> = Vec::with_capacity(links.profiles.len());
        for (from_idx, list) in links.adj.iter().enumerate() {
            let from = nodes.id(from_idx as u32);
            for &(to_idx, link_id) in list {
                let to = nodes.id(to_idx);
                named.push((link_id, format!("sim.link.busy_ns.{}-{}", from.0, to.0)));
            }
        }
        named.sort_unstable_by_key(|&(id, _)| id);
        SimObs {
            ev_deliver: registry.counter("sim.events.deliver"),
            ev_host_inject: registry.counter("sim.events.host_inject"),
            ev_timer: registry.counter("sim.events.timer"),
            run_until_ns: registry.histogram("sim.span.run_until_ns"),
            link_busy: named
                .into_iter()
                .map(|(_, name)| registry.gauge(&name))
                .collect(),
            link_busy_total: registry.gauge("sim.link.busy_ns.total"),
            stats: [
                registry.gauge("sim.stats.transmissions"),
                registry.gauge("sim.stats.deliveries"),
                registry.gauge("sim.stats.lost_link"),
                registry.gauge("sim.stats.lost_outage"),
                registry.gauge("sim.stats.lost_fault"),
                registry.gauge("sim.stats.corrupted"),
                registry.gauge("sim.stats.no_link"),
                registry.gauge("sim.stats.lost_queue"),
                registry.gauge("sim.stats.no_route"),
                registry.gauge("sim.stats.ttl_expired"),
                registry.gauge("sim.stats.timers"),
            ],
        }
    }

    /// Mirror the authoritative [`SimStats`] counters into gauges (they
    /// are cumulative totals, so `set` is the right verb).
    fn publish_stats(&self, s: &SimStats) {
        let fields = [
            s.transmissions,
            s.deliveries,
            s.lost_link,
            s.lost_outage,
            s.lost_fault,
            s.corrupted,
            s.no_link,
            s.lost_queue,
            s.no_route,
            s.ttl_expired,
            s.timers,
        ];
        for (gauge, v) in self.stats.iter().zip(fields) {
            gauge.set(v);
        }
    }
}

/// Dense interning of the topology's node ids: `AsId` ⇔ `u32` index.
/// Ids are sorted, so the index order matches `BTreeMap` iteration order
/// and results are bit-identical to the tree-keyed seed implementation.
#[derive(Debug)]
pub(crate) struct NodeTable {
    /// idx → id, ascending.
    pub(crate) ids: Vec<AsId>,
}

impl NodeTable {
    pub(crate) fn build(topology: &Topology) -> Self {
        NodeTable {
            ids: topology.nodes().map(|n| n.id).collect(),
        }
    }

    #[inline]
    fn idx(&self, id: AsId) -> Option<u32> {
        self.ids.binary_search(&id).ok().map(|i| i as u32)
    }

    #[inline]
    fn id(&self, idx: u32) -> AsId {
        self.ids[idx as usize] // tango-lint: allow(hot-path-panic) idx is a dense index interned by NodeTable
    }

    pub(crate) fn len(&self) -> usize {
        self.ids.len()
    }
}

/// Dense directed-link tables: per-link delay profile and scheduled
/// events, plus a per-node adjacency index for O(log degree) resolution
/// of `(from, to)` to a link id. Link ids are minted in from-node index
/// order, so a contiguous node range owns a contiguous link-id range —
/// which is what lets each shard carry dense local busy/accum tables.
#[derive(Debug)]
pub(crate) struct LinkTable {
    /// from_idx → sorted [(to_idx, link_id)].
    pub(crate) adj: Vec<Vec<(u32, u32)>>,
    /// link_id → the directed hop's profile (copied out of the topology).
    pub(crate) profiles: Vec<DirectionProfile>,
    /// link_id → events scheduled on the directed hop, topology order.
    events: Vec<Vec<LinkEvent>>,
}

impl LinkTable {
    pub(crate) fn build(topology: &Topology, nodes: &NodeTable) -> Self {
        let mut adj = vec![Vec::new(); nodes.len()];
        let mut profiles = Vec::new();
        let mut events = Vec::new();
        for (from_idx, &from) in nodes.ids.iter().enumerate() {
            for &to in topology.neighbors(from) {
                // tango-lint: allow(hot-path-panic) build-time, not per-packet: neighbors come from the same topology
                let to_idx = nodes.idx(to).expect("neighbor is a topology node");
                // tango-lint: allow(hot-path-panic) build-time: adjacency implies the profile exists
                let profile = topology
                    .direction_profile(from, to)
                    .expect("adjacency implies a link");
                let link_id = profiles.len() as u32;
                profiles.push(profile.clone());
                events.push(
                    topology
                        .events()
                        .iter()
                        .filter(|e| e.from == from && e.to == to)
                        .cloned()
                        .collect(),
                );
                adj[from_idx].push((to_idx, link_id)); // tango-lint: allow(hot-path-panic) from_idx enumerates adj's own indices
            }
        }
        for list in &mut adj {
            list.sort_unstable_by_key(|&(to, _)| to);
        }
        LinkTable {
            adj,
            profiles,
            events,
        }
    }

    #[inline]
    fn lookup(&self, from_idx: u32, to_idx: u32) -> Option<u32> {
        let list = &self.adj[from_idx as usize]; // tango-lint: allow(hot-path-panic) from_idx is a dense interned node index
        list.binary_search_by_key(&to_idx, |&(to, _)| to)
            .ok()
            .map(|i| list[i].1) // tango-lint: allow(hot-path-panic) i returned by binary_search on list itself
    }
}

/// The topology-derived state every shard reads and none mutates: safe to
/// share by reference across worker threads for the duration of a window.
pub(crate) struct SimShared {
    pub(crate) topology: Topology,
    pub(crate) nodes: NodeTable,
    pub(crate) links: LinkTable,
    pub(crate) fault: Option<FaultInjector>,
    pub(crate) part: Partition,
}

/// The execution context handed to agents. All side effects an agent can
/// have on the world go through here, which keeps event ordering and
/// randomness deterministic.
pub struct Ctx<'a> {
    /// The node this agent runs on.
    pub node: AsId,
    node_idx: u32,
    /// This node's emission origin (`node_idx + 1`): every event it
    /// schedules is keyed by it, giving location-based determinism.
    origin: u32,
    now: SimTime,
    clock: NodeClock,
    topology: &'a Topology,
    nodes: &'a NodeTable,
    links: &'a LinkTable,
    rng: &'a mut StdRng,
    fault: Option<FaultInjector>,
    stats: &'a mut SimStats,
    tracer: &'a mut Tracer,
    spans: &'a mut SpanRing,
    /// The span key of the dispatch currently executing: the parent
    /// carried by every event this dispatch schedules, and of every
    /// child span it records.
    dispatch_span: SpanKey,
    out: &'a mut Vec<QueuedEvent>,
    seq: &'a mut u64,
    /// Per-directed-link "busy until" instants (ns) for capacity-limited
    /// links owned by this shard, indexed by `link_id - link_base`:
    /// packets serialize behind the previous departure.
    link_busy: &'a mut [u64],
    /// Per-directed-link cumulative wire-occupancy time (ns), published
    /// as telemetry gauges at the end of each `run_until`.
    busy_accum: &'a mut [u64],
    /// First dense link id owned by the dispatching shard.
    link_base: usize,
    pool: &'a mut BufferPool,
}

impl<'a> Ctx<'a> {
    /// Current simulated time (global truth — agents implementing the
    /// Tango data plane must use [`Ctx::local_ns`] instead, as a real
    /// switch has no access to true time).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's local clock reading, nanoseconds.
    pub fn local_ns(&self) -> u64 {
        self.clock.local_ns(self.now)
    }

    /// Deterministic randomness for agent-level decisions. Every node
    /// draws from its own stream (seeded from the run seed and the AS
    /// number), so the sequence a node sees is independent of how other
    /// nodes — possibly on other shards — interleave with it.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// The topology (read-only; e.g. for neighbor queries).
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// Take a recycled buffer from the packet pool (cleared; capacity is
    /// whatever its previous life left).
    pub fn take_buffer(&mut self) -> Vec<u8> {
        self.pool.take()
    }

    /// An empty packet with `headroom` reserved bytes, backed by a pooled
    /// buffer when one is free.
    pub fn alloc_packet(&mut self, headroom: usize) -> Packet {
        Packet::from_recycled(self.pool.take(), headroom)
    }

    /// Hand a dead packet's buffer back to the pool. Call this where a
    /// packet's life ends (delivered-and-consumed, rejected, unroutable)
    /// so the next allocation on this simulation reuses it.
    pub fn recycle(&mut self, pkt: Packet) {
        self.pool.put(pkt.into_buffer());
    }

    fn trace(&mut self, kind: TraceKind) {
        self.tracer.record(TraceEvent {
            time: self.now,
            node: self.node,
            kind,
        });
    }

    /// Record a causal span on this node, parented to the current
    /// dispatch's span. Returns its key ([`SpanKey::NONE`] when span
    /// recording is disarmed). The Tango data plane uses this for
    /// encap/decap/reject spans; the engine itself records tx/drop.
    #[inline]
    pub fn span(&mut self, kind: SpanKind) -> SpanKey {
        self.spans.record(self.node.0, kind)
    }

    /// The span key of the dispatch currently executing (what [`Ctx::span`]
    /// children and scheduled events are parented to).
    pub fn dispatch_span(&self) -> SpanKey {
        self.dispatch_span
    }

    #[inline]
    fn span_drop(&mut self, reason: DropReason) {
        self.spans.record(self.node.0, SpanKind::Drop { reason });
    }

    /// The canonical key of this node's next emission.
    fn next_key(&mut self, time: SimTime) -> EventKey {
        *self.seq += 1;
        EventKey {
            time,
            origin: self.origin,
            seq: *self.seq,
        }
    }

    /// Transmit a packet to an adjacent node. Samples loss, event
    /// effects, fault injection, ECMP lane, and delay; schedules delivery.
    pub fn transmit(&mut self, to: AsId, mut pkt: Packet) {
        let links = self.links;
        let link_id = self
            .nodes
            .idx(to)
            .and_then(|to_idx| links.lookup(self.node_idx, to_idx).map(|l| (to_idx, l)));
        let Some((to_idx, link_id)) = link_id else {
            self.stats.no_link += 1;
            self.trace(TraceKind::NoLink);
            self.span_drop(DropReason::NoLink);
            self.pool.put(pkt.into_buffer());
            return;
        };
        let profile = &links.profiles[link_id as usize]; // tango-lint: allow(hot-path-panic) link_id is a dense id minted by LinkTable::build
        self.stats.transmissions += 1;
        self.trace(TraceKind::Tx { to });
        self.spans.record(self.node.0, SpanKind::Tx { to: to.0 });
        if profile.sample_loss(self.rng) {
            self.stats.lost_link += 1;
            self.trace(TraceKind::LossLink);
            self.span_drop(DropReason::LossLink);
            self.pool.put(pkt.into_buffer());
            return;
        }
        // Active wide-area events on this directed hop.
        let now_ns = self.now.as_ns();
        let link_events = &links.events[link_id as usize]; // tango-lint: allow(hot-path-panic) link_id is a dense id minted by LinkTable::build
        let mut shift: i64 = 0;
        for ev in link_events.iter().filter(|e| e.window.contains(now_ns)) {
            match ev.sample_effect(now_ns, self.rng) {
                Some(d) => shift += d,
                None => {
                    self.stats.lost_outage += 1;
                    self.trace(TraceKind::LossOutage);
                    self.span_drop(DropReason::LossOutage);
                    self.pool.put(pkt.into_buffer());
                    return;
                }
            }
        }
        if let Some(f) = self.fault {
            match f.apply(self.rng, pkt.bytes_mut()) {
                FaultDecision::Drop => {
                    self.stats.lost_fault += 1;
                    self.trace(TraceKind::LossFault);
                    self.span_drop(DropReason::LossFault);
                    self.pool.put(pkt.into_buffer());
                    return;
                }
                FaultDecision::Corrupted => {
                    self.stats.corrupted += 1;
                    self.trace(TraceKind::Corrupt);
                }
                FaultDecision::Pass => {}
            }
        }
        // Capacity model: packets serialize on finite-capacity links,
        // waiting behind earlier departures; overlong waits tail-drop.
        // The dispatching node owns every link it transmits on, so the
        // shard-local busy table (offset by link_base) always covers it.
        let mut queue_delay = 0u64;
        if profile.capacity_bps.is_some() {
            let tx = profile.tx_time_ns(pkt.len());
            let local_link = (link_id as usize).wrapping_sub(self.link_base);
            let busy = &mut self.link_busy[local_link]; // tango-lint: allow(hot-path-panic) the from-node owns this link, so link_id sits in this shard's contiguous link range
            let start = (*busy).max(now_ns);
            let wait = start - now_ns;
            if wait > profile.max_queue_ns {
                self.stats.lost_queue += 1;
                self.trace(TraceKind::LossQueue);
                self.span_drop(DropReason::LossQueue);
                self.pool.put(pkt.into_buffer());
                return;
            }
            *busy = start + tx;
            queue_delay = wait + tx;
            if let Some(acc) = self.busy_accum.get_mut(local_link) {
                *acc = acc.saturating_add(tx);
            }
        }
        let hash = flow_hash(pkt.bytes());
        let delay = profile.sample_delay(self.rng, hash, shift) + queue_delay;
        let time = self.now + SimTime(delay);
        // A link that goes dark mid-flight also kills the packets already
        // committed to it: if the *arrival* instant falls inside an
        // outage window on this hop, the packet never makes it off the
        // wire.
        let arrival_ns = time.as_ns();
        let arrives_in_outage = link_events
            .iter()
            .any(|ev| matches!(ev.kind, TopoEventKind::Outage) && ev.window.contains(arrival_ns));
        if arrives_in_outage {
            self.stats.lost_outage += 1;
            self.trace(TraceKind::LossOutage);
            self.span_drop(DropReason::LossOutage);
            self.pool.put(pkt.into_buffer());
            return;
        }
        let key = self.next_key(time);
        self.out.push(QueuedEvent {
            key,
            parent: self.dispatch_span,
            kind: EventKind::Deliver { to: to_idx, pkt },
        });
    }

    /// Schedule a timer on this node after `delay`.
    pub fn schedule_timer(&mut self, delay: SimTime, tag: u64) {
        let key = self.next_key(self.now + delay);
        self.out.push(QueuedEvent {
            key,
            parent: self.dispatch_span,
            kind: EventKind::Timer {
                node: self.node_idx,
                tag,
            },
        });
    }

    /// Count a routing-table miss (used by router agents).
    pub fn count_no_route(&mut self) {
        self.stats.no_route += 1;
        self.trace(TraceKind::NoRoute);
        self.span_drop(DropReason::NoRoute);
    }

    /// Count a hop-limit expiry (used by router agents).
    pub fn count_ttl_expired(&mut self) {
        self.stats.ttl_expired += 1;
        self.trace(TraceKind::TtlExpired);
        self.span_drop(DropReason::TtlExpired);
    }
}

/// Per-event-kind counts a shard accumulates during one `run_until`
/// (named fields, not an array, so the hot loop needs no indexing).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EvCounts {
    pub(crate) deliver: u64,
    pub(crate) host_inject: u64,
    pub(crate) timer: u64,
}

/// Per-shard execution accounting (the engine self-profiler): plain
/// virtual-time counters updated once per window and once per outbox
/// push, cumulative over the simulation's lifetime. Every field is a
/// pure function of (scenario, seed, shard count) — identical between
/// serial and threaded runners, so the numbers are safe to embed in
/// byte-diffed artifacts. `idle_windows / windows` is the deterministic
/// proxy for barrier-wait share: an idle window is a round the shard
/// spent waiting on the others with nothing to drain (wall clocks are
/// banned in deterministic crates, so wait *time* is not measurable —
/// or portable — here).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: u64,
    /// Synchronization windows entered (single-shard runs count one
    /// window per `run_until` segment).
    pub windows: u64,
    /// Windows that drained zero events (lockstep rounds this shard
    /// only waited at the barrier).
    pub idle_windows: u64,
    /// Events dispatched.
    pub events: u64,
    /// High-water mark of the pending-event queue, sampled at window
    /// entry.
    pub queue_peak: u64,
    /// Events handed to other shards through the outbox.
    pub outbox_events: u64,
}

/// One shard: a contiguous slice of the node table with its own event
/// queues, agents, clocks, RNG streams, stats, trace ring, and outgoing
/// link state. A shard never touches another shard's state — cross-shard
/// deliveries go through `outbox` and are exchanged at window barriers.
pub(crate) struct ShardState {
    pub(crate) index: usize,
    node_base: u32,
    node_end: u32,
    pub(crate) link_base: usize,
    agents: Vec<Option<Box<dyn Agent>>>,
    clocks: Vec<NodeClock>,
    /// Per-node RNG streams, seeded from `mix64(run seed, AS number)` —
    /// a node's draws depend only on its own event history, never on how
    /// other nodes interleave, so any partition sees identical streams.
    rngs: Vec<StdRng>,
    /// Per-node emission sequence counters (the `seq` of [`EventKey`]).
    node_seq: Vec<u64>,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    /// Externally scheduled events whose keys arrived in non-decreasing
    /// order — the common case for pre-scheduled traffic. Kept out of
    /// the heap and merged lazily at pop time, so pre-loading 100k
    /// packets does not inflate every heap operation to log(100k).
    staged: VecDeque<QueuedEvent>,
    /// Scratch for same-timestamp batch drains (allocation reused).
    batch: Vec<QueuedEvent>,
    pub(crate) now: SimTime,
    pub(crate) stats: SimStats,
    pub(crate) tracer: Tracer,
    pub(crate) spans: SpanRing,
    pub(crate) load: ShardLoad,
    link_busy: Vec<u64>,
    pub(crate) busy_accum: Vec<u64>,
    pool: BufferPool,
    out_scratch: Vec<QueuedEvent>,
    /// Cross-shard deliveries staged for each destination shard, drained
    /// at the next window barrier.
    outbox: Vec<Vec<QueuedEvent>>,
    pub(crate) ev_counts: EvCounts,
}

impl ShardState {
    fn new(index: usize, part: &Partition, nodes: &NodeTable, config: &SimConfig) -> Self {
        let (node_base, node_end) = part.node_range(index);
        let (link_base, link_end) = part.link_range(index);
        let n = (node_end - node_base) as usize;
        let n_links = link_end - link_base;
        let rngs = nodes
            .ids
            .iter()
            .skip(node_base as usize)
            .take(n)
            .map(|id| StdRng::seed_from_u64(mix64(config.seed ^ mix64(u64::from(id.0)))))
            .collect();
        ShardState {
            index,
            node_base,
            node_end,
            link_base,
            agents: (0..n).map(|_| None).collect(),
            clocks: vec![NodeClock::default(); n],
            rngs,
            node_seq: vec![0; n],
            queue: BinaryHeap::new(),
            staged: VecDeque::new(),
            batch: Vec::new(),
            now: SimTime::ZERO,
            stats: SimStats::default(),
            tracer: Tracer::new(config.trace_capacity),
            spans: SpanRing::new(config.span_capacity),
            load: ShardLoad {
                shard: index as u64,
                ..ShardLoad::default()
            },
            link_busy: vec![0; n_links],
            busy_accum: vec![0; n_links],
            pool: BufferPool::default(),
            out_scratch: Vec::new(),
            outbox: (0..part.len()).map(|_| Vec::new()).collect(),
            ev_counts: EvCounts::default(),
        }
    }

    /// Is `idx` one of this shard's nodes?
    #[inline]
    fn owns(&self, idx: u32) -> bool {
        idx >= self.node_base && idx < self.node_end
    }

    /// Stage or heap-push an externally scheduled event: events arriving
    /// in key order append to the staged queue in O(1); out-of-order
    /// stragglers go to the heap. The pop-side merge preserves the exact
    /// global key order either way.
    fn enqueue_external(&mut self, ev: QueuedEvent) {
        let in_order = self.staged.back().map_or(true, |b| b.key <= ev.key);
        if in_order {
            self.staged.push_back(ev);
        } else {
            self.queue.push(Reverse(ev));
        }
    }

    /// The key of the earliest pending event, if any.
    fn peek_key(&self) -> Option<EventKey> {
        let heap = self.queue.peek().map(|Reverse(e)| e.key);
        let staged = self.staged.front().map(|e| e.key);
        match (heap, staged) {
            (None, s) => s,
            (h, None) => h,
            (Some(h), Some(s)) => Some(h.min(s)),
        }
    }

    /// The timestamp of the earliest pending event, if any (the shard's
    /// vote for the next global window opening).
    pub(crate) fn next_time(&self) -> Option<SimTime> {
        self.peek_key().map(|k| k.time)
    }

    /// True if this shard has nothing pending.
    pub(crate) fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.staged.is_empty() && self.batch.is_empty()
    }

    /// Pop every pending event whose time equals `t` — from the merged
    /// heap+staged queues, in canonical key order — into `out` in one
    /// pass (the same-timestamp batch drain; new events emitted *by*
    /// the batch land at later keys or form the next batch).
    fn drain_batch_at(&mut self, t: SimTime, out: &mut Vec<QueuedEvent>) {
        loop {
            let heap_key = self
                .queue
                .peek()
                .map(|Reverse(e)| e.key)
                .filter(|k| k.time == t);
            let staged_key = self.staged.front().map(|e| e.key).filter(|k| k.time == t);
            let take_staged = match (heap_key, staged_key) {
                (None, None) => break,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                (Some(h), Some(s)) => s < h,
            };
            // The peeks above guarantee the chosen queue is non-empty;
            // break (never panic) if that ever stops holding.
            let ev = if take_staged {
                self.staged.pop_front()
            } else {
                self.queue.pop().map(|Reverse(e)| e)
            };
            match ev {
                Some(e) => out.push(e),
                None => break,
            }
        }
    }

    /// Process every pending event with `time <= horizon` (inclusive),
    /// batching same-timestamp runs. Returns events processed. The
    /// horizon is the conservative window bound: the callers guarantee no
    /// cross-shard event at or before it can still arrive.
    pub(crate) fn run_window(&mut self, shared: &SimShared, horizon: SimTime) -> u64 {
        self.load.windows += 1;
        let depth = (self.queue.len() + self.staged.len()) as u64;
        self.load.queue_peak = self.load.queue_peak.max(depth);
        let mut processed = 0u64;
        let mut batch = std::mem::take(&mut self.batch);
        while let Some(t) = self.next_time() {
            if t > horizon {
                break;
            }
            self.drain_batch_at(t, &mut batch);
            for ev in batch.drain(..) {
                debug_assert!(ev.key.time >= self.now, "time must be monotonic");
                self.now = ev.key.time;
                match &ev.kind {
                    EventKind::Deliver { .. } => self.ev_counts.deliver += 1,
                    EventKind::HostInject { .. } => self.ev_counts.host_inject += 1,
                    EventKind::Timer { .. } => self.ev_counts.timer += 1,
                }
                self.dispatch(shared, ev.key, ev.parent, ev.kind);
                processed += 1;
            }
        }
        self.batch = batch;
        self.load.events += processed;
        if processed == 0 {
            self.load.idle_windows += 1;
        }
        processed
    }

    /// Move this shard's staged deliveries for shard `dst` out (window
    /// barrier exchange).
    pub(crate) fn take_outbox(&mut self, dst: usize) -> Vec<QueuedEvent> {
        match self.outbox.get_mut(dst) {
            Some(v) => std::mem::take(v),
            None => Vec::new(),
        }
    }

    /// Is the outbox for shard `dst` empty?
    pub(crate) fn outbox_is_empty(&self, dst: usize) -> bool {
        self.outbox.get(dst).map_or(true, Vec::is_empty)
    }

    /// Accept cross-shard deliveries (heap-pushed: they arrive beyond the
    /// closed window, in no particular order, but keys restore the total
    /// order at pop time).
    pub(crate) fn receive(&mut self, events: Vec<QueuedEvent>) {
        for ev in events {
            self.queue.push(Reverse(ev));
        }
    }

    /// Drain-variant of [`ShardState::receive`] for reusable inboxes.
    pub(crate) fn receive_drain(&mut self, events: &mut Vec<QueuedEvent>) {
        for ev in events.drain(..) {
            self.queue.push(Reverse(ev));
        }
    }

    fn dispatch(&mut self, shared: &SimShared, key: EventKey, parent: SpanKey, kind: EventKind) {
        let node_idx = kind.dest();
        let local = node_idx.wrapping_sub(self.node_base) as usize;
        let slot = if self.owns(node_idx) {
            self.agents.get_mut(local)
        } else {
            // Out-of-range sentinel (NO_NODE routes to shard 0): treated
            // exactly like a node without an agent.
            None
        };
        let Some(mut agent) = slot.and_then(|slot| slot.take()) else {
            // No agent: the packet/timer evaporates (counted as no_route —
            // a node without behaviour cannot forward). The dead packet's
            // buffer still feeds the pool.
            match kind {
                EventKind::Deliver { pkt, .. } | EventKind::HostInject { pkt, .. } => {
                    self.stats.no_route += 1;
                    self.pool.put(pkt.into_buffer());
                }
                EventKind::Timer { .. } => {}
            }
            return;
        };
        let node = shared.nodes.id(node_idx);
        let clock = self.clocks[local]; // tango-lint: allow(hot-path-panic) node_idx was validated by the agents lookup above
        self.tracer
            .begin_dispatch(key.time.as_ns(), key.origin, key.seq);
        self.spans
            .begin_dispatch(key.time.as_ns(), key.origin, key.seq);
        // The dispatch's own span key: derived from the canonical event
        // key alone, so it exists (and is identical) whether or not span
        // recording is armed — scheduled events always carry it.
        let dispatch_span = SpanKey {
            time_ns: key.time.as_ns(),
            origin: key.origin,
            seq: key.seq,
            intra: 0,
        };
        {
            // tango-lint: allow(hot-path-panic) local was validated by the agents lookup above; rngs/node_seq are sized to the same node range
            let mut ctx = Ctx {
                node,
                node_idx,
                origin: node_idx + 1,
                now: self.now,
                clock,
                topology: &shared.topology,
                nodes: &shared.nodes,
                links: &shared.links,
                rng: &mut self.rngs[local],
                fault: shared.fault,
                stats: &mut self.stats,
                tracer: &mut self.tracer,
                spans: &mut self.spans,
                dispatch_span,
                out: &mut self.out_scratch,
                seq: &mut self.node_seq[local],
                link_busy: &mut self.link_busy,
                busy_accum: &mut self.busy_accum,
                link_base: self.link_base,
                pool: &mut self.pool,
            };
            match kind {
                EventKind::Deliver { pkt, .. } => {
                    ctx.stats.deliveries += 1;
                    ctx.trace(TraceKind::Rx);
                    ctx.spans.record_dispatch(node.0, parent, SpanKind::Deliver);
                    agent.on_packet(&mut ctx, pkt);
                }
                EventKind::HostInject { pkt, .. } => {
                    ctx.spans
                        .record_dispatch(node.0, parent, SpanKind::HostInject);
                    agent.on_host_packet(&mut ctx, pkt);
                }
                EventKind::Timer { tag, .. } => {
                    ctx.stats.timers += 1;
                    ctx.trace(TraceKind::Timer { tag });
                    // Lazy: recorded only if the handler emits a child
                    // span, so idle probe/control ticks stay off the ring.
                    ctx.spans
                        .stage_dispatch(node.0, parent, SpanKind::Timer { tag });
                    agent.on_timer(&mut ctx, tag);
                }
            }
        }
        // Route emissions: own-shard events go straight to the local
        // queue; cross-shard deliveries wait in the outbox for the next
        // window barrier. Their arrival times exceed the current window's
        // horizon by the lookahead guarantee, so staging them is safe.
        // tango-lint: allow(hot-path-panic) shard_of is total (sentinels map to shard 0) and outbox is sized to the shard count
        for ev in self.out_scratch.drain(..) {
            let dest = ev.kind.dest();
            if dest >= self.node_base && dest < self.node_end {
                self.queue.push(Reverse(ev));
            } else {
                let dst = shared.part.shard_of(dest);
                if dst == self.index {
                    self.queue.push(Reverse(ev));
                } else {
                    self.outbox[dst].push(ev);
                    self.load.outbox_events += 1;
                }
            }
        }
        self.agents[local] = Some(agent); // tango-lint: allow(hot-path-panic) node_idx was validated by the same-slot take above
    }

    fn set_agent_local(&mut self, idx: u32, agent: Box<dyn Agent>) {
        let local = idx.wrapping_sub(self.node_base) as usize;
        if let Some(slot) = self.agents.get_mut(local) {
            *slot = Some(agent);
        }
    }

    fn set_clock_local(&mut self, idx: u32, clock: NodeClock) {
        let local = idx.wrapping_sub(self.node_base) as usize;
        if let Some(slot) = self.clocks.get_mut(local) {
            *slot = clock;
        }
    }
}

/// The deterministic discrete-event network simulator.
pub struct NetworkSim {
    shared: SimShared,
    shards: Vec<ShardState>,
    now: SimTime,
    /// External-scheduler sequence counter (origin 0 of [`EventKey`]).
    ext_seq: u64,
    /// Merged run totals (authoritative after each `run_until`).
    stats: SimStats,
    obs: Option<SimObs>,
    /// Resolved execution mode for multi-shard runs.
    threaded: bool,
}

impl NetworkSim {
    /// Build a simulator over a topology.
    pub fn new(topology: Topology, config: SimConfig) -> Self {
        let nodes = NodeTable::build(&topology);
        let links = LinkTable::build(&topology, &nodes);
        let part = Partition::build(&nodes, &links, config.shards.max(1));
        let obs = config.obs.as_ref().map(|r| SimObs::new(r, &nodes, &links));
        let shards: Vec<ShardState> = (0..part.len())
            .map(|s| ShardState::new(s, &part, &nodes, &config))
            .collect();
        let threaded = match config.shard_mode {
            ShardMode::Serial => false,
            ShardMode::Threaded => true,
            ShardMode::Auto => {
                part.len() > 1 && std::thread::available_parallelism().is_ok_and(|p| p.get() > 1)
            }
        };
        NetworkSim {
            shared: SimShared {
                topology,
                nodes,
                links,
                fault: config.fault,
                part,
            },
            shards,
            now: SimTime::ZERO,
            ext_seq: 0,
            stats: SimStats::default(),
            obs,
            threaded,
        }
    }

    fn idx_or_sentinel(&self, node: AsId) -> u32 {
        self.shared.nodes.idx(node).unwrap_or(NO_NODE)
    }

    /// The number of shards the node table was partitioned into (may be
    /// smaller than requested: clamped to the node count, and forced to 1
    /// when a cross-shard link would have zero lookahead).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The conservative-synchronization lookahead, ns: the minimum
    /// cross-shard link latency (`u64::MAX` when no link crosses shards,
    /// i.e. windows open to the full horizon).
    pub fn shard_lookahead_ns(&self) -> u64 {
        self.shared.part.lookahead_ns()
    }

    /// Set a node's clock (default: synchronized). The node must exist in
    /// the topology.
    // tango-lint: allow(hot-path-panic) setup-time API with a documented must-exist contract; shard_of is total over interned indices
    pub fn set_clock(&mut self, node: AsId, clock: NodeClock) {
        let idx = self
            .shared
            .nodes
            .idx(node)
            .expect("clock node is in the topology");
        let shard = self.shared.part.shard_of(idx);
        self.shards[shard].set_clock_local(idx, clock);
    }

    /// Install a node's agent (replacing any previous one). The node must
    /// exist in the topology.
    // tango-lint: allow(hot-path-panic) setup-time API with a documented must-exist contract; shard_of is total over interned indices
    pub fn set_agent(&mut self, node: AsId, agent: Box<dyn Agent>) {
        let idx = self
            .shared
            .nodes
            .idx(node)
            .expect("agent node is in the topology");
        let shard = self.shared.part.shard_of(idx);
        self.shards[shard].set_agent_local(idx, agent);
    }

    /// Schedule a packet to enter `node` from its host side at `time`.
    // tango-lint: allow(hot-path-panic) shard_of is total (sentinels map to shard 0), so the shard index is always in range
    pub fn schedule_host_packet(&mut self, time: SimTime, node: AsId, pkt: Packet) {
        self.ext_seq += 1;
        let to = self.idx_or_sentinel(node);
        let ev = QueuedEvent {
            key: EventKey {
                time,
                origin: EXT_ORIGIN,
                seq: self.ext_seq,
            },
            parent: SpanKey::NONE,
            kind: EventKind::HostInject { to, pkt },
        };
        let shard = self.shared.part.shard_of(to);
        self.shards[shard].enqueue_external(ev);
    }

    /// Schedule a timer for `node` at absolute `time` (e.g. the initial
    /// kick of a probe generator).
    // tango-lint: allow(hot-path-panic) shard_of is total (sentinels map to shard 0), so the shard index is always in range
    pub fn schedule_timer_at(&mut self, time: SimTime, node: AsId, tag: u64) {
        self.ext_seq += 1;
        let node = self.idx_or_sentinel(node);
        let ev = QueuedEvent {
            key: EventKey {
                time,
                origin: EXT_ORIGIN,
                seq: self.ext_seq,
            },
            parent: SpanKey::NONE,
            kind: EventKind::Timer { node, tag },
        };
        let shard = self.shared.part.shard_of(node);
        self.shards[shard].enqueue_external(ev);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Simulation counters (merged across shards; refreshed at the end of
    /// every [`NetworkSim::run_until`]).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The trace ring, merged across shards into canonical key order.
    pub fn tracer(&self) -> Tracer {
        Tracer::merged(self.shards.iter().map(|s| &s.tracer))
    }

    /// The causal span ring, merged across shards into canonical key
    /// order (the flight-recorder view; empty unless
    /// [`SimConfig::span_capacity`] armed it and the `trace` feature is
    /// on).
    pub fn spans(&self) -> SpanRing {
        SpanRing::merged(self.shards.iter().map(|s| &s.spans))
    }

    /// The engine self-profiler: per-shard window/event/queue/outbox
    /// accounting, cumulative since construction. Deterministic —
    /// identical across serial and threaded runners — so callers may
    /// embed it in byte-diffed artifacts (keyed by shard count).
    pub fn shard_load(&self) -> Vec<ShardLoad> {
        self.shards.iter().map(|s| s.load).collect()
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.shared.topology
    }

    /// Buffers parked in the packet-buffer freelists (observability).
    pub fn pooled_buffers(&self) -> usize {
        self.shards.iter().map(|s| s.pool.len()).sum()
    }

    /// Run until the queues are empty or simulated time exceeds `until`.
    /// Returns the number of events processed.
    ///
    /// Single-shard runs take the direct path (one window to the
    /// horizon). Multi-shard runs advance in lockstep conservative
    /// windows — serially or on worker threads per the configured
    /// [`ShardMode`] — with bit-identical results either way.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let span_start = self.now.as_ns();
        for s in &mut self.shards {
            s.ev_counts = EvCounts::default();
        }
        let processed = if self.shards.len() == 1 {
            match self.shards.first_mut() {
                Some(s) => s.run_window(&self.shared, until),
                None => 0,
            }
        } else if self.threaded {
            shard::run_threaded(&mut self.shards, &self.shared, until)
        } else {
            shard::run_serial(&mut self.shards, &self.shared, until)
        };
        // Advance every clock to the horizon even where queues went
        // quiet, then merge the per-shard counters into the run totals.
        let mut merged = SimStats::default();
        for s in &mut self.shards {
            if s.now < until {
                s.now = until;
            }
            merged.accumulate(&s.stats);
        }
        self.stats = merged;
        if self.now < until {
            self.now = until;
        }
        if let Some(obs) = &self.obs {
            let mut counts = EvCounts::default();
            for s in &self.shards {
                counts.deliver += s.ev_counts.deliver;
                counts.host_inject += s.ev_counts.host_inject;
                counts.timer += s.ev_counts.timer;
            }
            obs.ev_deliver.add(counts.deliver);
            obs.ev_host_inject.add(counts.host_inject);
            obs.ev_timer.add(counts.timer);
            obs.run_until_ns
                .record(self.now.as_ns().saturating_sub(span_start));
            let mut total = 0u64;
            for s in &self.shards {
                for (offset, &ns) in s.busy_accum.iter().enumerate() {
                    if let Some(gauge) = obs.link_busy.get(s.link_base + offset) {
                        gauge.set(ns);
                    }
                    total = total.saturating_add(ns);
                }
            }
            obs.link_busy_total.set(total);
            obs.publish_stats(&self.stats);
        }
        processed
    }

    /// True if no events are pending on any shard.
    pub fn idle(&self) -> bool {
        self.shards.iter().all(ShardState::is_idle)
    }
}

/// A plain IP router: longest-prefix-match forwarding with hop-limit
/// decrement. The behaviour of every non-Tango node (Vultr borders and
/// transit ASes).
pub struct RouterAgent {
    id: AsId,
    table: PrefixTrie<AsId>,
}

impl RouterAgent {
    /// A router with the given forwarding table (usually built by
    /// `tango_bgp::BgpEngine::forwarding_table`).
    pub fn new(id: AsId, table: PrefixTrie<AsId>) -> Self {
        RouterAgent { id, table }
    }

    /// Replace the forwarding table (BGP re-convergence).
    pub fn set_table(&mut self, table: PrefixTrie<AsId>) {
        self.table = table;
    }
}

impl Agent for RouterAgent {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, mut pkt: Packet) {
        let Some(dst) = pkt.dst_addr() else {
            ctx.count_no_route();
            ctx.recycle(pkt);
            return;
        };
        let Some((_, &next)) = self.table.longest_match(dst) else {
            ctx.count_no_route();
            ctx.recycle(pkt);
            return;
        };
        if next == self.id {
            // Locally destined at a plain router: nothing behind it.
            ctx.count_no_route();
            ctx.recycle(pkt);
            return;
        }
        if !pkt.decrement_hop_limit() {
            ctx.count_ttl_expired();
            ctx.recycle(pkt);
            return;
        }
        ctx.transmit(next, pkt);
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use tango_net::{IpCidr, Ipv6Packet, Ipv6Repr};
    use tango_topology::Topology;
    use tango_topology::{AsKind, AsNode, DirectionProfile, LinkProfile};

    fn ipv6_packet(dst: &str, hop_limit: u8) -> Packet {
        let repr = Ipv6Repr {
            src_addr: "2001:db8:aaaa::1".parse().unwrap(),
            dst_addr: dst.parse().unwrap(),
            next_header: 17,
            payload_len: 0,
            hop_limit,
            traffic_class: 0,
            flow_label: 0,
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut p = Ipv6Packet::new_unchecked(&mut buf);
        repr.emit(&mut p).unwrap();
        Packet::new(buf)
    }

    /// Line topology 1 -- 2 -- 3 with constant 1 ms hops.
    fn line() -> Topology {
        let mut t = Topology::new();
        for id in 1..=3u32 {
            t.add_node(AsNode::new(id, AsKind::Transit, format!("{id}")))
                .unwrap();
        }
        let lp = || LinkProfile::symmetric(DirectionProfile::constant(1_000_000));
        t.add_peering(AsId(1), AsId(2), lp()).unwrap();
        t.add_peering(AsId(2), AsId(3), lp()).unwrap();
        t
    }

    struct SinkAgent {
        received: Arc<AtomicU64>,
        last_local_ns: Arc<AtomicU64>,
    }

    impl Agent for SinkAgent {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _pkt: Packet) {
            self.received.fetch_add(1, Ordering::SeqCst);
            self.last_local_ns.store(ctx.local_ns(), Ordering::SeqCst);
        }
    }

    fn router_table(entries: &[(&str, u32)]) -> PrefixTrie<AsId> {
        let mut t = PrefixTrie::new();
        for (p, n) in entries {
            t.insert(p.parse::<IpCidr>().unwrap(), AsId(*n));
        }
        t
    }

    fn build_line_sim() -> (NetworkSim, Arc<AtomicU64>, Arc<AtomicU64>) {
        let mut sim = NetworkSim::new(
            line(),
            SimConfig {
                trace_capacity: 64,
                ..Default::default()
            },
        );
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(
                AsId(1),
                router_table(&[("2001:db8:3::/48", 2)]),
            )),
        );
        sim.set_agent(
            AsId(2),
            Box::new(RouterAgent::new(
                AsId(2),
                router_table(&[("2001:db8:3::/48", 3)]),
            )),
        );
        let received = Arc::new(AtomicU64::new(0));
        let local = Arc::new(AtomicU64::new(0));
        sim.set_agent(
            AsId(3),
            Box::new(SinkAgent {
                received: received.clone(),
                last_local_ns: local.clone(),
            }),
        );
        (sim, received, local)
    }

    #[test]
    fn packet_crosses_two_hops_with_exact_delay() {
        let (mut sim, received, _) = build_line_sim();
        sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:3::1", 64));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(received.load(Ordering::SeqCst), 1);
        // Delivered after exactly 2 ms (two constant 1 ms hops).
        let rx_events: Vec<_> = sim
            .tracer()
            .events()
            .into_iter()
            .filter(|e| e.kind == TraceKind::Rx && e.node == AsId(3))
            .collect();
        assert_eq!(rx_events.len(), 1);
        assert_eq!(rx_events[0].time, SimTime::from_ms(2));
        assert_eq!(sim.stats().deliveries, 2); // at node 2 and node 3
        assert_eq!(sim.stats().transmissions, 2);
    }

    #[test]
    fn receiver_clock_offset_shows_in_local_time() {
        let (mut sim, _, local) = build_line_sim();
        sim.set_clock(AsId(3), NodeClock::with_offset_ns(500));
        sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:3::1", 64));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(local.load(Ordering::SeqCst), 2_000_500);
    }

    #[test]
    fn no_route_counted() {
        let (mut sim, received, _) = build_line_sim();
        sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:99::1", 64));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(received.load(Ordering::SeqCst), 0);
        assert_eq!(sim.stats().no_route, 1);
    }

    #[test]
    fn ttl_expiry_stops_packet() {
        let (mut sim, received, _) = build_line_sim();
        // hop_limit 1: node 1 decrements -> expires before transmit.
        sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:3::1", 1));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(received.load(Ordering::SeqCst), 0);
        assert_eq!(sim.stats().ttl_expired, 1);
    }

    #[test]
    fn forwarding_loop_burns_ttl_not_cpu() {
        // 1 and 2 point at each other: the packet must die by TTL.
        let mut sim = NetworkSim::new(line(), SimConfig::default());
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(
                AsId(1),
                router_table(&[("2001:db8:3::/48", 2)]),
            )),
        );
        sim.set_agent(
            AsId(2),
            Box::new(RouterAgent::new(
                AsId(2),
                router_table(&[("2001:db8:3::/48", 1)]),
            )),
        );
        sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:3::1", 16));
        sim.run_until(SimTime::from_secs(10));
        assert!(sim.idle());
        assert_eq!(sim.stats().ttl_expired, 1);
        assert!(sim.stats().transmissions <= 16);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut t = line();
            // Add jitter so randomness actually matters.
            t = {
                let mut t2 = Topology::new();
                for id in 1..=3u32 {
                    t2.add_node(AsNode::new(id, AsKind::Transit, format!("{id}")))
                        .unwrap();
                }
                let lp =
                    || {
                        LinkProfile::symmetric(DirectionProfile::constant(1_000_000).with_jitter(
                            tango_topology::JitterModel::Gaussian { sigma_ns: 100_000 },
                        ))
                    };
                t2.add_peering(AsId(1), AsId(2), lp()).unwrap();
                t2.add_peering(AsId(2), AsId(3), lp()).unwrap();
                let _ = t;
                t2
            };
            let mut sim = NetworkSim::new(
                t,
                SimConfig {
                    seed,
                    trace_capacity: 256,
                    ..Default::default()
                },
            );
            sim.set_agent(
                AsId(1),
                Box::new(RouterAgent::new(
                    AsId(1),
                    router_table(&[("2001:db8:3::/48", 2)]),
                )),
            );
            sim.set_agent(
                AsId(2),
                Box::new(RouterAgent::new(
                    AsId(2),
                    router_table(&[("2001:db8:3::/48", 3)]),
                )),
            );
            sim.set_agent(
                AsId(3),
                Box::new(RouterAgent::new(AsId(3), PrefixTrie::new())),
            );
            for i in 0..50 {
                sim.schedule_host_packet(
                    SimTime::from_ms(i),
                    AsId(1),
                    ipv6_packet("2001:db8:3::1", 64),
                );
            }
            sim.run_until(SimTime::from_secs(2));
            sim.tracer().events()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn link_loss_is_counted() {
        let mut t = Topology::new();
        for id in 1..=2u32 {
            t.add_node(AsNode::new(id, AsKind::Transit, format!("{id}")))
                .unwrap();
        }
        t.add_peering(
            AsId(1),
            AsId(2),
            LinkProfile::symmetric(DirectionProfile::constant(1_000).with_loss(1.0)),
        )
        .unwrap();
        let mut sim = NetworkSim::new(t, SimConfig::default());
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(AsId(1), router_table(&[("::/0", 2)]))),
        );
        sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:3::1", 64));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().lost_link, 1);
        assert_eq!(sim.stats().deliveries, 0);
    }

    #[test]
    fn fault_injector_drop_all() {
        let mut sim = NetworkSim::new(
            line(),
            SimConfig {
                fault: Some(FaultInjector::new(1.0, 0.0)),
                ..Default::default()
            },
        );
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(AsId(1), router_table(&[("::/0", 2)]))),
        );
        sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:3::1", 64));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().lost_fault, 1);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerAgent {
            fired: Arc<AtomicU64>,
        }
        impl Agent for TimerAgent {
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
                // Tags must arrive 1, 2, 3... (scheduled at 1 ms spacing).
                let prev = self.fired.fetch_add(1, Ordering::SeqCst);
                assert_eq!(prev + 1, tag);
                if tag < 5 {
                    ctx.schedule_timer(SimTime::from_ms(1), tag + 1);
                }
            }
        }
        let fired = Arc::new(AtomicU64::new(0));
        let mut sim = NetworkSim::new(line(), SimConfig::default());
        sim.set_agent(
            AsId(1),
            Box::new(TimerAgent {
                fired: fired.clone(),
            }),
        );
        sim.schedule_timer_at(SimTime::from_ms(1), AsId(1), 1);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(fired.load(Ordering::SeqCst), 5);
        assert_eq!(sim.stats().timers, 5);
    }

    #[test]
    fn run_until_advances_clock_when_idle() {
        let mut sim = NetworkSim::new(line(), SimConfig::default());
        sim.run_until(SimTime::from_secs(7));
        assert_eq!(sim.now(), SimTime::from_secs(7));
        assert!(sim.idle());
    }

    #[test]
    fn capacity_serializes_back_to_back_packets() {
        // 100 Mbit/s link: a 1250 B packet occupies it for 100 µs. Three
        // packets injected at the same instant arrive 100 µs apart.
        let mut t = Topology::new();
        for id in 1..=2u32 {
            t.add_node(AsNode::new(id, AsKind::Transit, format!("{id}")))
                .unwrap();
        }
        t.add_peering(
            AsId(1),
            AsId(2),
            LinkProfile::symmetric(
                DirectionProfile::constant(1_000_000).with_capacity(100_000_000, u64::MAX),
            ),
        )
        .unwrap();
        let mut sim = NetworkSim::new(
            t,
            SimConfig {
                trace_capacity: 64,
                ..Default::default()
            },
        );
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(AsId(1), router_table(&[("::/0", 2)]))),
        );
        sim.set_agent(
            AsId(2),
            Box::new(RouterAgent::new(AsId(2), PrefixTrie::new())),
        );
        // Build a 1250-byte packet (payload pads the 40 B header).
        let repr = Ipv6Repr {
            src_addr: "2001:db8:aaaa::1".parse().unwrap(),
            dst_addr: "2001:db8:3::1".parse().unwrap(),
            next_header: 17,
            payload_len: 1210,
            hop_limit: 64,
            traffic_class: 0,
            flow_label: 0,
        };
        let mut pkt = vec![0u8; repr.total_len()];
        let mut view = Ipv6Packet::new_unchecked(&mut pkt[..]);
        repr.emit(&mut view).unwrap();
        for _ in 0..3 {
            sim.schedule_host_packet(SimTime::ZERO, AsId(1), Packet::new(pkt.clone()));
        }
        sim.run_until(SimTime::from_secs(1));
        let arrivals: Vec<u64> = sim
            .tracer()
            .events()
            .into_iter()
            .filter(|e| e.kind == TraceKind::Rx && e.node == AsId(2))
            .map(|e| e.time.as_ns())
            .collect();
        assert_eq!(arrivals.len(), 3);
        // 1 ms propagation + k × 100 µs serialization.
        assert_eq!(arrivals[0], 1_100_000);
        assert_eq!(arrivals[1], 1_200_000);
        assert_eq!(arrivals[2], 1_300_000);
    }

    #[test]
    fn queue_tail_drop_kicks_in() {
        let mut t = Topology::new();
        for id in 1..=2u32 {
            t.add_node(AsNode::new(id, AsKind::Transit, format!("{id}")))
                .unwrap();
        }
        // Queue cap of 150 µs: the 3rd simultaneous packet (wait 200 µs)
        // is dropped.
        t.add_peering(
            AsId(1),
            AsId(2),
            LinkProfile::symmetric(
                DirectionProfile::constant(1_000_000).with_capacity(100_000_000, 150_000),
            ),
        )
        .unwrap();
        let mut sim = NetworkSim::new(t, SimConfig::default());
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(AsId(1), router_table(&[("::/0", 2)]))),
        );
        sim.set_agent(
            AsId(2),
            Box::new(RouterAgent::new(AsId(2), PrefixTrie::new())),
        );
        let repr = Ipv6Repr {
            src_addr: "2001:db8:aaaa::1".parse().unwrap(),
            dst_addr: "2001:db8:3::1".parse().unwrap(),
            next_header: 17,
            payload_len: 1210,
            hop_limit: 64,
            traffic_class: 0,
            flow_label: 0,
        };
        let mut pkt = vec![0u8; repr.total_len()];
        let mut view = Ipv6Packet::new_unchecked(&mut pkt[..]);
        repr.emit(&mut view).unwrap();
        for _ in 0..4 {
            sim.schedule_host_packet(SimTime::ZERO, AsId(1), Packet::new(pkt.clone()));
        }
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().lost_queue, 2, "3rd and 4th exceed the cap");
        assert_eq!(sim.stats().deliveries, 2);
    }

    #[test]
    fn infinite_capacity_links_never_queue() {
        let (mut sim, received, _) = build_line_sim();
        for _ in 0..100 {
            sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:3::1", 64));
        }
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(received.load(Ordering::SeqCst), 100);
        assert_eq!(sim.stats().lost_queue, 0);
        // All arrive at the same instant: no serialization.
        assert!(sim.now() >= SimTime::from_ms(2));
    }

    #[test]
    fn outage_kills_packets_already_in_flight() {
        use tango_topology::{EventKind as TEventKind, LinkEvent, TimeWindow};
        // 1 ms hop; outage window [0.5 ms, 10 ms). A packet sent at t=0
        // is committed to the wire *before* the outage begins but would
        // arrive at 1 ms — mid-window — so the link going down takes it
        // with it. A packet sent at 10.5 ms, after the link is back,
        // survives.
        let mut t = line();
        t.add_event(LinkEvent {
            from: AsId(1),
            to: AsId(2),
            window: TimeWindow::new(500_000, SimTime::from_ms(10).as_ns()),
            kind: TEventKind::Outage,
        })
        .unwrap();
        let mut sim = NetworkSim::new(t, SimConfig::default());
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(AsId(1), router_table(&[("::/0", 2)]))),
        );
        sim.set_agent(
            AsId(2),
            Box::new(RouterAgent::new(AsId(2), PrefixTrie::new())),
        );
        sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:3::1", 64));
        sim.schedule_host_packet(
            SimTime(10_500_000),
            AsId(1),
            ipv6_packet("2001:db8:3::1", 64),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            sim.stats().lost_outage,
            1,
            "in-flight packet dies with the link"
        );
        assert_eq!(sim.stats().deliveries, 1, "post-recovery arrival survives");
    }

    #[test]
    fn outage_event_drops_everything_in_window() {
        use tango_topology::{EventKind as TEventKind, LinkEvent, TimeWindow};
        let mut t = line();
        t.add_event(LinkEvent {
            from: AsId(1),
            to: AsId(2),
            window: TimeWindow::new(0, SimTime::from_ms(10).as_ns()),
            kind: TEventKind::Outage,
        })
        .unwrap();
        let mut sim = NetworkSim::new(t, SimConfig::default());
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(AsId(1), router_table(&[("::/0", 2)]))),
        );
        sim.set_agent(
            AsId(2),
            Box::new(RouterAgent::new(AsId(2), PrefixTrie::new())),
        );
        // One packet inside the outage window, one after.
        sim.schedule_host_packet(
            SimTime::from_ms(5),
            AsId(1),
            ipv6_packet("2001:db8:3::1", 64),
        );
        sim.schedule_host_packet(
            SimTime::from_ms(15),
            AsId(1),
            ipv6_packet("2001:db8:3::1", 64),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().lost_outage, 1);
        assert_eq!(sim.stats().deliveries, 1);
    }

    #[test]
    fn packet_headroom_prepend_strip_roundtrip() {
        let inner = vec![0x45u8, 1, 2, 3];
        let mut pkt = Packet::with_headroom(16, &inner);
        assert_eq!(pkt.bytes(), &inner[..]);
        assert_eq!(pkt.headroom(), 16);
        let hdr = pkt.prepend(8);
        hdr[..8].copy_from_slice(&[9u8; 8]);
        assert_eq!(pkt.len(), inner.len() + 8);
        assert_eq!(pkt.headroom(), 8);
        assert_eq!(&pkt.bytes()[..8], &[9u8; 8]);
        pkt.strip_front(8);
        assert_eq!(pkt.bytes(), &inner[..]);
        assert_eq!(pkt.headroom(), 16);
    }

    #[test]
    fn packet_equality_ignores_headroom() {
        let a = Packet::new(vec![1, 2, 3]);
        let b = Packet::with_headroom(32, &[1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn dst_addr_cache_tracks_mutation() {
        let mut pkt = ipv6_packet("2001:db8:3::1", 64);
        let first = pkt.dst_addr().unwrap();
        assert_eq!(first, "2001:db8:3::1".parse::<IpAddr>().unwrap());
        // Cached: a second call without mutation returns the same.
        assert_eq!(pkt.dst_addr(), Some(first));
        // Rewrite the destination through bytes_mut: cache must refresh.
        {
            let bytes = pkt.bytes_mut();
            let mut v = Ipv6Packet::new_unchecked(bytes);
            v.set_dst_addr("2001:db8:3::2".parse().unwrap());
        }
        assert_eq!(
            pkt.dst_addr(),
            Some("2001:db8:3::2".parse::<IpAddr>().unwrap())
        );
    }

    #[test]
    fn decrement_hop_limit_keeps_dst_cache_valid() {
        let mut pkt = ipv6_packet("2001:db8:3::1", 64);
        let before = pkt.dst_addr();
        assert!(pkt.decrement_hop_limit());
        assert_eq!(pkt.bytes()[7], 63);
        assert_eq!(pkt.dst_addr(), before);
    }

    #[test]
    fn decrement_hop_limit_fixes_ipv4_checksum() {
        // A syntactically valid IPv4 header with a correct checksum.
        let mut hdr = vec![
            0x45, 0, 0, 20, 0, 0, 0, 0, 64, 17, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2,
        ];
        let ck = tango_net::checksum::checksum(&hdr);
        hdr[10..12].copy_from_slice(&ck.to_be_bytes());
        let mut pkt = Packet::new(hdr);
        assert!(pkt.decrement_hop_limit());
        assert_eq!(pkt.bytes()[8], 63);
        assert_eq!(tango_net::checksum::checksum(pkt.bytes()), 0);
    }

    #[test]
    fn dead_packets_feed_the_buffer_pool() {
        // Packets that die at the sink (no route) must hand their
        // buffers back to the pool.
        let (mut sim, _, _) = build_line_sim();
        assert_eq!(sim.pooled_buffers(), 0);
        sim.schedule_host_packet(SimTime::ZERO, AsId(1), ipv6_packet("2001:db8:99::1", 64));
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.pooled_buffers() > 0);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn obs_registry_mirrors_sim_counters() {
        let reg = Registry::new();
        let mut sim = NetworkSim::new(
            line(),
            SimConfig {
                obs: Some(reg.clone()),
                ..Default::default()
            },
        );
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(
                AsId(1),
                router_table(&[("2001:db8:3::/48", 2)]),
            )),
        );
        sim.set_agent(
            AsId(2),
            Box::new(RouterAgent::new(
                AsId(2),
                router_table(&[("2001:db8:3::/48", 3)]),
            )),
        );
        sim.set_agent(
            AsId(3),
            Box::new(RouterAgent::new(AsId(3), PrefixTrie::new())),
        );
        for i in 0..10 {
            sim.schedule_host_packet(
                SimTime::from_ms(i),
                AsId(1),
                ipv6_packet("2001:db8:3::1", 64),
            );
        }
        sim.run_until(SimTime::from_secs(1));
        let snap = reg.snapshot();
        assert_eq!(snap.counters["sim.events.host_inject"], 10);
        assert_eq!(
            snap.counters["sim.events.deliver"],
            sim.stats().deliveries,
            "per-kind event counter tracks the authoritative stat"
        );
        assert_eq!(
            snap.gauges["sim.stats.transmissions"],
            sim.stats().transmissions
        );
        assert_eq!(snap.gauges["sim.stats.no_route"], sim.stats().no_route);
        assert_eq!(snap.histograms["sim.span.run_until_ns"].count, 1);
        // The line topology has no capacity-limited links: busy time is
        // published (per hop and total) and reads zero.
        assert_eq!(snap.gauges["sim.link.busy_ns.total"], 0);
        assert!(snap.gauges.contains_key("sim.link.busy_ns.1-2"));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn obs_link_busy_accumulates_on_capacity_links() {
        // 100 Mbit/s: a 1250 B packet occupies the wire for 100 µs.
        let mut t = Topology::new();
        for id in 1..=2u32 {
            t.add_node(AsNode::new(id, AsKind::Transit, format!("{id}")))
                .unwrap();
        }
        t.add_peering(
            AsId(1),
            AsId(2),
            LinkProfile::symmetric(
                DirectionProfile::constant(1_000_000).with_capacity(100_000_000, u64::MAX),
            ),
        )
        .unwrap();
        let reg = Registry::new();
        let mut sim = NetworkSim::new(
            t,
            SimConfig {
                obs: Some(reg.clone()),
                ..Default::default()
            },
        );
        sim.set_agent(
            AsId(1),
            Box::new(RouterAgent::new(AsId(1), router_table(&[("::/0", 2)]))),
        );
        sim.set_agent(
            AsId(2),
            Box::new(RouterAgent::new(AsId(2), PrefixTrie::new())),
        );
        let repr = Ipv6Repr {
            src_addr: "2001:db8:aaaa::1".parse().unwrap(),
            dst_addr: "2001:db8:3::1".parse().unwrap(),
            next_header: 17,
            payload_len: 1210,
            hop_limit: 64,
            traffic_class: 0,
            flow_label: 0,
        };
        let mut pkt = vec![0u8; repr.total_len()];
        let mut view = Ipv6Packet::new_unchecked(&mut pkt[..]);
        repr.emit(&mut view).unwrap();
        for _ in 0..3 {
            sim.schedule_host_packet(SimTime::ZERO, AsId(1), Packet::new(pkt.clone()));
        }
        sim.run_until(SimTime::from_secs(1));
        let snap = reg.snapshot();
        assert_eq!(snap.gauges["sim.link.busy_ns.1-2"], 300_000);
        assert_eq!(snap.gauges["sim.link.busy_ns.total"], 300_000);
    }

    #[test]
    fn buffer_pool_recycles_capacity() {
        let mut pool = BufferPool::default();
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&[1, 2, 3]);
        let ptr_cap = buf.capacity();
        pool.put(buf);
        assert_eq!(pool.len(), 1);
        let reused = pool.take();
        assert!(reused.is_empty());
        assert_eq!(reused.capacity(), ptr_cap);
        assert!(pool.is_empty());
    }

    /// Jittered line topology (randomness matters) used by the sharding
    /// equivalence tests.
    fn jittered_line() -> Topology {
        let mut t = Topology::new();
        for id in 1..=3u32 {
            t.add_node(AsNode::new(id, AsKind::Transit, format!("{id}")))
                .unwrap();
        }
        let lp = || {
            LinkProfile::symmetric(
                DirectionProfile::constant(1_000_000)
                    .with_jitter(tango_topology::JitterModel::Gaussian { sigma_ns: 100_000 }),
            )
        };
        t.add_peering(AsId(1), AsId(2), lp()).unwrap();
        t.add_peering(AsId(2), AsId(3), lp()).unwrap();
        t
    }

    #[test]
    fn same_timestamp_batch_preserves_key_order() {
        // Externally scheduled timers on one node, deliberately arriving
        // out of time order so some land in the staged queue and some in
        // the heap. The same-timestamp batch drain must still fire them
        // in canonical key order — and identically for any shard count.
        use std::sync::Mutex;
        struct OrderAgent {
            fired: Arc<Mutex<Vec<u64>>>,
        }
        impl Agent for OrderAgent {
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, tag: u64) {
                self.fired.lock().unwrap().push(tag);
            }
        }
        let run = |shards: usize| {
            let fired = Arc::new(Mutex::new(Vec::new()));
            let mut sim = NetworkSim::new(
                line(),
                SimConfig {
                    shards,
                    shard_mode: ShardMode::Serial,
                    ..Default::default()
                },
            );
            sim.set_agent(
                AsId(1),
                Box::new(OrderAgent {
                    fired: fired.clone(),
                }),
            );
            // Scheduling order: (2ms, 100), (1ms, 1), (1ms, 2), (2ms, 101).
            // The 1 ms timers arrive after a later-timed one and go to the
            // heap; the 2 ms timers stage in order. The merged drain must
            // fire [1, 2, 100, 101].
            sim.schedule_timer_at(SimTime::from_ms(2), AsId(1), 100);
            sim.schedule_timer_at(SimTime::from_ms(1), AsId(1), 1);
            sim.schedule_timer_at(SimTime::from_ms(1), AsId(1), 2);
            sim.schedule_timer_at(SimTime::from_ms(2), AsId(1), 101);
            sim.run_until(SimTime::from_secs(1));
            assert_eq!(sim.stats().timers, 4);
            let order = fired.lock().unwrap().clone();
            order
        };
        assert_eq!(run(1), vec![1, 2, 100, 101]);
        assert_eq!(run(2), vec![1, 2, 100, 101]);
        assert_eq!(run(3), vec![1, 2, 100, 101]);
    }

    #[test]
    fn sharded_run_matches_single_shard() {
        // The tentpole invariant in miniature: stats and traces must be
        // bit-identical across shard counts and execution modes.
        let run = |shards: usize, mode: ShardMode| {
            let mut sim = NetworkSim::new(
                jittered_line(),
                SimConfig {
                    seed: 42,
                    trace_capacity: 4096,
                    shards,
                    shard_mode: mode,
                    ..Default::default()
                },
            );
            sim.set_agent(
                AsId(1),
                Box::new(RouterAgent::new(
                    AsId(1),
                    router_table(&[("2001:db8:3::/48", 2)]),
                )),
            );
            sim.set_agent(
                AsId(2),
                Box::new(RouterAgent::new(
                    AsId(2),
                    router_table(&[("2001:db8:3::/48", 3)]),
                )),
            );
            sim.set_agent(
                AsId(3),
                Box::new(RouterAgent::new(AsId(3), PrefixTrie::new())),
            );
            for i in 0..50 {
                sim.schedule_host_packet(
                    SimTime::from_ms(i),
                    AsId(1),
                    ipv6_packet("2001:db8:3::1", 64),
                );
            }
            let processed = sim.run_until(SimTime::from_secs(2));
            (*sim.stats(), sim.tracer().events(), processed)
        };
        let baseline = run(1, ShardMode::Serial);
        assert!(baseline.2 > 0, "baseline must process events");
        for shards in [2usize, 3] {
            for mode in [ShardMode::Serial, ShardMode::Threaded] {
                let got = run(shards, mode);
                assert_eq!(
                    got, baseline,
                    "shards={shards} mode={mode:?} diverged from single-shard"
                );
            }
        }
    }

    #[test]
    fn partition_forced_serial_when_requested_shards_exceed_nodes() {
        let sim = NetworkSim::new(
            line(),
            SimConfig {
                shards: 64,
                ..Default::default()
            },
        );
        assert!(sim.shard_count() <= 3);
        assert!(sim.shard_lookahead_ns() >= 500_000);
    }
}
