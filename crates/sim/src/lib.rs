//! # tango-sim — deterministic discrete-event wide-area network simulator
//!
//! The paper's prototype ran between two real Vultr datacenters for eight
//! days; this crate is the substitute substrate (see DESIGN.md): a
//! deterministic discrete-event simulator that moves *byte-exact packets*
//! across the AS-level topology of `tango-topology`, sampling per-hop
//! delay/jitter/loss from the calibrated link profiles and folding in the
//! scheduled wide-area events (route changes, instability periods).
//!
//! Key properties:
//!
//! * **Determinism** — one seeded RNG, a totally ordered event queue
//!   (time, then insertion sequence). Same seed ⇒ same trace, byte for
//!   byte. Experiments and tests rely on this.
//! * **Unsynchronized clocks** — every node owns a [`NodeClock`] with a
//!   constant offset (and optional drift). The Tango data plane reads
//!   *node-local* time only, so the paper's central argument — a constant
//!   clock offset cancels out of relative one-way-delay comparisons
//!   (§4.2) — is reproduced, not assumed.
//! * **Intra-AS ECMP** — a packet's 5-tuple flow hash picks a lane on
//!   multi-lane links, reproducing the "unpredictable path diversity"
//!   that Tango's fixed UDP encapsulation pins down (§3).
//! * **Fault injection** (smoltcp-inspired) — configurable random drop and
//!   corruption for robustness tests.
//!
//! Node behaviour is pluggable through the [`Agent`] trait: plain routers
//! ([`RouterAgent`]) forward by longest-prefix match over a BGP-derived
//! table, while `tango-dataplane` provides the Tango switch agents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod chaos;
pub mod clock;
pub mod edge_noise;
pub mod engine;
pub mod fault;
pub mod hash;
pub mod shard;
pub mod time;
pub mod trace;
pub mod traffic;

pub use adversary::{
    shared_adversary_stats, ActiveWindow, AdversaryAgent, AdversaryBehavior, AdversaryStats,
    SharedAdversaryStats, TAG_ADV_REPLAY, TAG_ADV_SPOOF,
};
pub use chaos::{ChaosConfig, ChaosEvent, ChaosKind, ChaosSchedule};
pub use clock::NodeClock;
pub use engine::{
    Agent, BufferPool, Ctx, NetworkSim, Packet, RouterAgent, ShardLoad, SimConfig, SimStats,
};
pub use fault::{FaultDecision, FaultInjector, OutageSchedule};
pub use shard::ShardMode;
pub use tango_trace::{DropReason, Span, SpanKey, SpanKind, SpanRing};
pub use time::SimTime;
pub use trace::{TraceEvent, TraceKind, Tracer};
pub use traffic::{CbrSchedule, PoissonSchedule, Schedule};
