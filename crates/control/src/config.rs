//! Provisioning: from discovered paths to a running tunnel configuration.
//!
//! §4.1 step 3 / §3: each side announces one prefix per discovered path
//! (with the community set that pins it), carves tunnel endpoints out of
//! those prefixes, and installs a static table mapping the peer's host
//! prefixes to the tunnel set. *"In our setup, each server advertises
//! four different /48 prefixes."*

use crate::discovery::{discover_paths, DiscoveredPath, DiscoveryError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use tango_bgp::{BgpEngine, EngineError};
use tango_dataplane::Tunnel;
use tango_net::{IpCidr, Ipv6Cidr};
use tango_topology::AsId;

/// One side of a Tango pairing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SideConfig {
    /// The Tango switch's node id (the tenant server in the prototype).
    pub tenant: AsId,
    /// The provider border it speaks eBGP with.
    pub border: AsId,
    /// Address block to carve per-path /48 tunnel prefixes from
    /// (a /44 fits 16 paths).
    pub block: Ipv6Cidr,
    /// The host-addressing prefix (§3: "a distinct set of prefixes (not
    /// used for tunnels between Tango switches) that is used for host
    /// addressing"); announced plainly so non-Tango endpoints still work.
    pub host_prefix: IpCidr,
}

/// Provisioning failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvisionError {
    /// Discovery failed in one direction.
    Discovery(DiscoveryError),
    /// The BGP engine failed.
    Engine(EngineError),
    /// The address block is too small for the discovered path count.
    BlockTooSmall,
    /// After provisioning, a pinned prefix converged onto the wrong path.
    PinMismatch {
        /// The prefix that failed verification.
        prefix: IpCidr,
        /// The path it was meant to take.
        wanted: Vec<AsId>,
        /// The path it actually converged to (None = unreachable).
        got: Option<Vec<AsId>>,
    },
}

impl From<DiscoveryError> for ProvisionError {
    fn from(e: DiscoveryError) -> Self {
        ProvisionError::Discovery(e)
    }
}

impl From<EngineError> for ProvisionError {
    fn from(e: EngineError) -> Self {
        ProvisionError::Engine(e)
    }
}

impl core::fmt::Display for ProvisionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProvisionError::Discovery(e) => write!(f, "discovery: {e}"),
            ProvisionError::Engine(e) => write!(f, "engine: {e}"),
            ProvisionError::BlockTooSmall => write!(f, "address block too small for path count"),
            ProvisionError::PinMismatch {
                prefix,
                wanted,
                got,
            } => {
                write!(
                    f,
                    "prefix {prefix} pinned to {wanted:?} but converged to {got:?}"
                )
            }
        }
    }
}

impl std::error::Error for ProvisionError {}

/// Everything both switches need after provisioning.
#[derive(Debug, Clone)]
pub struct ProvisionedPairing {
    /// Paths usable by traffic A→B (announced by B, observed at A),
    /// parallel to `a_tunnels`.
    pub paths_a_to_b: Vec<DiscoveredPath>,
    /// Paths usable by traffic B→A, parallel to `b_tunnels`.
    pub paths_b_to_a: Vec<DiscoveredPath>,
    /// Tunnel table for side A's switch (sending toward B).
    pub a_tunnels: Vec<Tunnel>,
    /// Tunnel table for side B's switch (sending toward A).
    pub b_tunnels: Vec<Tunnel>,
}

fn label_for(engine: &BgpEngine, path: &DiscoveredPath) -> String {
    match path.distinguishing_carrier() {
        Some(id) => engine
            .topology()
            .node(id)
            .map(|n| n.name.clone())
            .unwrap_or_else(|| id.to_string()),
        None => "direct".to_string(),
    }
}

/// Carve the `i`-th /48 out of a block.
fn path_prefix(block: &Ipv6Cidr, i: usize) -> Result<Ipv6Cidr, ProvisionError> {
    block
        .subnet(48, i as u128)
        .map_err(|_| ProvisionError::BlockTooSmall)
}

/// Discover paths in both directions, announce pinned per-path prefixes
/// and the host prefixes, converge, and verify every pin.
///
/// Tunnel ids are indexes into the discovery order (0 = the BGP-default
/// path); the same id on both sides refers to *different* directions'
/// paths, which is fine — tunnels are unidirectional.
pub fn provision(
    engine: &mut BgpEngine,
    a: &SideConfig,
    b: &SideConfig,
    max_paths: usize,
) -> Result<ProvisionedPairing, ProvisionError> {
    let infra = [a.border, b.border];
    // Borders must strip private ASNs and honor the action communities.
    for border in infra {
        engine.set_strip_private(border, true)?;
        engine.set_honor_actions(border, true)?;
    }

    // Discovery uses a scratch prefix carved from the announcing block's
    // top end so it can't collide with path prefixes (index 15 of a /44).
    let probe_a = path_prefix(&a.block, 15)?;
    let probe_b = path_prefix(&b.block, 15)?;
    // Paths for traffic A→B are exposed by announcements from B.
    let paths_a_to_b = discover_paths(
        engine,
        b.tenant,
        a.tenant,
        IpCidr::V6(probe_b),
        &infra,
        max_paths,
    )?;
    let paths_b_to_a = discover_paths(
        engine,
        a.tenant,
        b.tenant,
        IpCidr::V6(probe_a),
        &infra,
        max_paths,
    )?;

    // Announce pinned per-path prefixes from each side.
    let announce_pinned = |engine: &mut BgpEngine,
                           tenant: AsId,
                           block: &Ipv6Cidr,
                           paths: &[DiscoveredPath]|
     -> Result<Vec<Ipv6Cidr>, ProvisionError> {
        let mut prefixes = Vec::new();
        for (i, path) in paths.iter().enumerate() {
            let prefix = path_prefix(block, i)?;
            engine.announce(tenant, IpCidr::V6(prefix), path.pin_communities.clone())?;
            prefixes.push(prefix);
        }
        Ok(prefixes)
    };
    // B's prefixes carry A→B traffic; A's prefixes carry B→A traffic.
    let b_prefixes = announce_pinned(engine, b.tenant, &b.block, &paths_a_to_b)?;
    let a_prefixes = announce_pinned(engine, a.tenant, &a.block, &paths_b_to_a)?;
    engine.announce(a.tenant, a.host_prefix, BTreeSet::new())?;
    engine.announce(b.tenant, b.host_prefix, BTreeSet::new())?;
    engine.converge()?;

    // Verify every pin: the converged AS path for prefix i must match
    // discovery's path i.
    let verify = |engine: &BgpEngine,
                  observer: AsId,
                  prefixes: &[Ipv6Cidr],
                  paths: &[DiscoveredPath]|
     -> Result<(), ProvisionError> {
        for (prefix, want) in prefixes.iter().zip(paths) {
            let got = engine
                .as_path(observer, IpCidr::V6(*prefix))
                .map(<[AsId]>::to_vec);
            let got_transits: Option<Vec<AsId>> = got.as_ref().map(|p| {
                p.iter()
                    .copied()
                    .filter(|x| !x.is_private() && !infra.contains(x))
                    .collect()
            });
            if got_transits.as_deref() != Some(&want.transit_path[..]) {
                return Err(ProvisionError::PinMismatch {
                    prefix: IpCidr::V6(*prefix),
                    wanted: want.transit_path.clone(),
                    got: got_transits,
                });
            }
        }
        Ok(())
    };
    verify(engine, a.tenant, &b_prefixes, &paths_a_to_b)?;
    verify(engine, b.tenant, &a_prefixes, &paths_b_to_a)?;

    // Build tunnel tables. A's tunnel i: local endpoint from A's prefix
    // for its *return* direction... tunnels only need a routable local
    // address; we use the side's own path-i prefix (or the last one if
    // counts differ).
    let a_tunnels: Vec<Tunnel> = paths_a_to_b
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let local = a_prefixes[i.min(a_prefixes.len() - 1)];
            Tunnel::from_prefixes(i as u16, label_for(engine, p), local, b_prefixes[i])
        })
        .collect();
    let b_tunnels: Vec<Tunnel> = paths_b_to_a
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let local = b_prefixes[i.min(b_prefixes.len() - 1)];
            Tunnel::from_prefixes(i as u16, label_for(engine, p), local, a_prefixes[i])
        })
        .collect();

    Ok(ProvisionedPairing {
        paths_a_to_b,
        paths_b_to_a,
        a_tunnels,
        b_tunnels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_topology::vultr::{
        vultr_scenario, COGENT, GTT, LEVEL3, NTT, TELIA, TENANT_LA, TENANT_NY, VULTR_LA, VULTR_NY,
    };

    fn engine() -> BgpEngine {
        let s = vultr_scenario();
        let mut e = BgpEngine::new(s.topology.clone());
        for border in [VULTR_LA, VULTR_NY] {
            e.set_neighbor_pref(border, s.neighbor_pref[&border].clone())
                .unwrap();
        }
        e
    }

    fn la() -> SideConfig {
        SideConfig {
            tenant: TENANT_LA,
            border: VULTR_LA,
            block: "2001:db8:100::/44".parse().unwrap(),
            host_prefix: "2001:db8:1ff::/48".parse().unwrap(),
        }
    }

    fn ny() -> SideConfig {
        SideConfig {
            tenant: TENANT_NY,
            border: VULTR_NY,
            block: "2001:db8:200::/44".parse().unwrap(),
            host_prefix: "2001:db8:2ff::/48".parse().unwrap(),
        }
    }

    #[test]
    fn provisions_four_verified_tunnels_each_way() {
        let mut e = engine();
        let p = provision(&mut e, &la(), &ny(), 8).unwrap();
        assert_eq!(p.a_tunnels.len(), 4);
        assert_eq!(p.b_tunnels.len(), 4);
        let labels: Vec<&str> = p.a_tunnels.iter().map(|t| t.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["NTT", "Telia", "GTT", "Cogent"],
            "LA→NY labels"
        );
        let labels: Vec<&str> = p.b_tunnels.iter().map(|t| t.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["NTT", "Telia", "GTT", "Level3"],
            "NY→LA labels"
        );
        // Discovery order matches Fig. 3.
        assert_eq!(p.paths_a_to_b[3].transit_path, vec![NTT, COGENT]);
        assert_eq!(p.paths_b_to_a[3].transit_path, vec![NTT, LEVEL3]);
        assert_eq!(p.paths_a_to_b[2].transit_path, vec![GTT]);
        assert_eq!(p.paths_b_to_a[1].transit_path, vec![TELIA]);
    }

    #[test]
    fn tunnel_endpoints_live_in_carved_prefixes() {
        let mut e = engine();
        let p = provision(&mut e, &la(), &ny(), 8).unwrap();
        // LA tunnel 2 (GTT) must target NY's third /48.
        let want: Ipv6Cidr = "2001:db8:202::/48".parse().unwrap();
        assert!(want.contains(p.a_tunnels[2].remote_endpoint));
        // And NY tunnel 2's remote lives in LA's third /48.
        let want: Ipv6Cidr = "2001:db8:102::/48".parse().unwrap();
        assert!(want.contains(p.b_tunnels[2].remote_endpoint));
    }

    #[test]
    fn converged_engine_routes_each_tunnel_prefix_distinctly() {
        let mut e = engine();
        let p = provision(&mut e, &la(), &ny(), 8).unwrap();
        // Forwarding traces from NY toward each LA prefix hit the right
        // transit.
        let transits = [NTT, TELIA, GTT, NTT /* Level3 path starts at NTT */];
        for (i, t) in p.b_tunnels.iter().enumerate() {
            let dst = IpCidr::V6(Ipv6Cidr::new(t.remote_endpoint, 48).unwrap());
            let trace = e.trace_path(TENANT_NY, dst).unwrap();
            assert_eq!(trace[2], transits[i], "tunnel {i} first transit");
        }
    }

    #[test]
    fn host_prefixes_reachable_without_communities() {
        let mut e = engine();
        provision(&mut e, &la(), &ny(), 8).unwrap();
        assert!(e
            .as_path(TENANT_NY, "2001:db8:1ff::/48".parse().unwrap())
            .is_some());
        assert!(e
            .as_path(TENANT_LA, "2001:db8:2ff::/48".parse().unwrap())
            .is_some());
    }

    #[test]
    fn max_paths_limits_tunnels() {
        let mut e = engine();
        let p = provision(&mut e, &la(), &ny(), 2).unwrap();
        assert_eq!(p.a_tunnels.len(), 2);
        assert_eq!(p.b_tunnels.len(), 2);
    }

    #[test]
    fn block_too_small_is_reported() {
        let mut e = engine();
        let mut a = la();
        a.block = "2001:db8:100::/48".parse().unwrap(); // no room for /48 subnets
        match provision(&mut e, &a, &ny(), 8) {
            Err(ProvisionError::BlockTooSmall) => {}
            other => panic!("expected BlockTooSmall, got {other:?}"),
        }
    }
}
