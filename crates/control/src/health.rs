//! Per-tunnel path-health tracking and health-gated selection.
//!
//! The paper's promise (§3, §5) is *reaction*: a Tango pair notices
//! wide-area trouble and routes around it. The policies in [`crate::policy`]
//! react to *degradation* (delay, jitter, loss) but treat total silence
//! only through the relative-staleness heuristic. This module adds the
//! missing liveness layer:
//!
//! * [`PathHealth`] — a per-tunnel state machine
//!   `Up → Suspect → Down → Probing → Up`, driven by the absolute
//!   per-path silence signal the switch computes (time since the path's
//!   sample count last advanced, in the controller's own clock) plus a
//!   loss-rate threshold.
//! * Exponential backoff with deterministic jitter on re-probe attempts:
//!   a `Down` path is probed again only when its backoff expires
//!   (`Down → Probing`); a failed attempt doubles the backoff (capped),
//!   a successful one must survive hysteresis — `recovery_successes`
//!   consecutive control ticks with fresh deliveries — before the path
//!   is readmitted (`Probing → Up`).
//! * [`HealthGated`] — wraps any [`PathPolicy`], hides non-`Up` paths
//!   from the inner policy, sanitizes its decision so a blackholed path
//!   is *never* selected, and degrades to the BGP-default tunnel when
//!   every path is down (never panics).
//!
//! Every transition is appended to a shared timeline
//! ([`HealthTransition`]) so experiments can report time-to-detect and
//! time-to-failover. All randomness (backoff jitter) derives from a
//! seeded SplitMix64 hash: same seed ⇒ same timeline.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use tango_dataplane::{PathPolicy, PathSnapshot, Selection};
use tango_obs::{Counter, Histogram, Registry};

/// Liveness verdict for one tunnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Delivering normally; fully selectable.
    Up,
    /// Quiet longer than `suspect_after_ns` (or loss above threshold);
    /// still selectable, but on notice.
    Suspect,
    /// Declared dead: excluded from selection, probes withheld until the
    /// current backoff expires.
    Down,
    /// Backoff expired: probes flow again, but the path stays excluded
    /// from selection until `recovery_successes` consecutive control
    /// ticks observe fresh deliveries.
    Probing,
}

impl core::fmt::Display for HealthState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            HealthState::Up => "up",
            HealthState::Suspect => "suspect",
            HealthState::Down => "down",
            HealthState::Probing => "probing",
        };
        f.write_str(s)
    }
}

/// Thresholds and schedules for the health machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Silence before `Up → Suspect`, ns.
    pub suspect_after_ns: u64,
    /// Silence before `Suspect → Down` (the detection window), ns.
    pub down_after_ns: u64,
    /// Loss rate that also pushes an `Up` path to `Suspect` (secondary
    /// signal; silence is primary — a blackholed path shows no losses to
    /// a sequence-gap estimator, only silence).
    pub loss_threshold: f64,
    /// First re-probe backoff after a path is declared `Down`, ns.
    pub backoff_initial_ns: u64,
    /// Backoff ceiling, ns (doubling stops here).
    pub backoff_max_ns: u64,
    /// Consecutive control ticks with fresh deliveries required to
    /// readmit a `Probing` path (recovery hysteresis).
    pub recovery_successes: u32,
    /// Fractional jitter applied to each backoff interval (0.1 = ±10 %),
    /// derived deterministically from `jitter_seed`, the path id, and
    /// the attempt number.
    pub jitter: f64,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            suspect_after_ns: 200_000_000, // 200 ms ≈ 20 missed 10 ms probes
            down_after_ns: 500_000_000,    // half-second detection window
            loss_threshold: 0.9,
            backoff_initial_ns: 500_000_000, // 0.5 s, then 1 s, 2 s, ...
            backoff_max_ns: 8_000_000_000,   // capped at 8 s
            recovery_successes: 3,
            jitter: 0.1,
            jitter_seed: 0x7461_6e67, // "tang"
        }
    }
}

/// One recorded state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// Controller-local time of the transition, ns.
    pub at_ns: u64,
    /// Which tunnel.
    pub path: u16,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
}

/// Shared, append-only record of every health transition — the raw
/// material for time-to-detect / time-to-failover reporting.
pub type HealthTimeline = Arc<Mutex<Vec<HealthTransition>>>;

/// SplitMix64: cheap, deterministic hash for backoff jitter.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-tunnel health state machine. Feed it one [`PathSnapshot`] per
/// control tick via [`PathHealth::observe`]; ask it whether probes may
/// flow via [`PathHealth::allow_probe`].
#[derive(Debug, Clone)]
pub struct PathHealth {
    path: u16,
    state: HealthState,
    /// Sample count at the previous observation (progress detector).
    last_samples: u64,
    /// Current backoff interval, ns.
    backoff_ns: u64,
    /// When the next re-probe attempt may start (valid in `Down`).
    next_probe_at_ns: u64,
    /// When the current `Probing` attempt started.
    probing_since_ns: u64,
    /// Consecutive successful (fresh-delivery) ticks while `Probing`.
    successes: u32,
    /// Re-probe attempt counter (jitter stream index).
    attempt: u64,
}

impl PathHealth {
    /// A fresh machine for `path`, starting `Up`.
    pub fn new(path: u16) -> Self {
        PathHealth {
            path,
            state: HealthState::Up,
            last_samples: 0,
            backoff_ns: 0,
            next_probe_at_ns: 0,
            probing_since_ns: 0,
            successes: 0,
            attempt: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// The backoff interval for attempt `attempt`, jittered
    /// deterministically: `base × 2^min(attempt, 20)`, capped at
    /// `backoff_max_ns`, then scaled by `1 ± jitter`.
    fn jittered_backoff(&self, cfg: &HealthConfig) -> u64 {
        let exp = self.attempt.min(20) as u32;
        let raw = cfg
            .backoff_initial_ns
            .saturating_mul(1u64 << exp)
            .min(cfg.backoff_max_ns);
        let h = splitmix64(
            cfg.jitter_seed ^ (u64::from(self.path) << 32) ^ self.attempt.wrapping_mul(0x9E37),
        );
        // Map the hash to [-1, 1) and scale by the jitter fraction.
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let scale = 1.0 + cfg.jitter.clamp(0.0, 1.0) * (2.0 * frac - 1.0);
        (raw as f64 * scale) as u64
    }

    fn transition(&mut self, now_ns: u64, to: HealthState, out: &mut Vec<HealthTransition>) {
        let from = self.state;
        if from == to {
            return;
        }
        self.state = to;
        out.push(HealthTransition {
            at_ns: now_ns,
            path: self.path,
            from,
            to,
        });
    }

    /// Advance the machine one control tick. `snap` is this path's fresh
    /// snapshot (with the switch-computed `silence_ns`); transitions are
    /// appended to `out`.
    pub fn observe(
        &mut self,
        now_ns: u64,
        snap: &PathSnapshot,
        cfg: &HealthConfig,
        out: &mut Vec<HealthTransition>,
    ) {
        let progressed = snap.samples > self.last_samples;
        self.last_samples = snap.samples;
        // Silence may momentarily exceed thresholds on the very tick that
        // also delivered (coarse control periods): fresh progress always
        // reads as silence 0.
        let silence = if progressed {
            0
        } else {
            snap.silence_ns.unwrap_or(0)
        };
        match self.state {
            HealthState::Up => {
                let lossy = snap.samples > 0 && snap.loss_rate >= cfg.loss_threshold;
                if silence >= cfg.down_after_ns {
                    // Coarse ticks can blow straight through the suspect
                    // window; record both hops so the timeline is honest.
                    self.transition(now_ns, HealthState::Suspect, out);
                    self.enter_down(now_ns, cfg, out);
                } else if silence >= cfg.suspect_after_ns || lossy {
                    self.transition(now_ns, HealthState::Suspect, out);
                }
            }
            HealthState::Suspect => {
                let lossy = snap.samples > 0 && snap.loss_rate >= cfg.loss_threshold;
                if silence >= cfg.down_after_ns {
                    self.enter_down(now_ns, cfg, out);
                } else if silence < cfg.suspect_after_ns && !lossy {
                    self.transition(now_ns, HealthState::Up, out);
                }
            }
            HealthState::Down => {
                if now_ns >= self.next_probe_at_ns {
                    self.successes = 0;
                    self.probing_since_ns = now_ns;
                    self.transition(now_ns, HealthState::Probing, out);
                }
            }
            HealthState::Probing => {
                if progressed {
                    self.successes += 1;
                    if self.successes >= cfg.recovery_successes {
                        self.backoff_ns = 0;
                        self.attempt = 0;
                        self.transition(now_ns, HealthState::Up, out);
                    }
                } else if now_ns.saturating_sub(self.probing_since_ns) >= cfg.suspect_after_ns {
                    // The attempt window elapsed with nothing delivered:
                    // back to Down with a doubled (capped) backoff.
                    self.enter_down(now_ns, cfg, out);
                }
            }
        }
    }

    fn enter_down(&mut self, now_ns: u64, cfg: &HealthConfig, out: &mut Vec<HealthTransition>) {
        self.backoff_ns = self.jittered_backoff(cfg);
        self.next_probe_at_ns = now_ns.saturating_add(self.backoff_ns);
        self.attempt = self.attempt.saturating_add(1);
        self.successes = 0;
        self.transition(now_ns, HealthState::Down, out);
    }

    /// Should a probe be emitted on this path right now? `Down` paths
    /// hold probes until the backoff expires (the expiry itself flips the
    /// machine to `Probing`, recorded in `out`).
    pub fn allow_probe(&mut self, now_ns: u64, out: &mut Vec<HealthTransition>) -> bool {
        match self.state {
            HealthState::Down => {
                if now_ns >= self.next_probe_at_ns {
                    self.successes = 0;
                    self.probing_since_ns = now_ns;
                    self.transition(now_ns, HealthState::Probing, out);
                    true
                } else {
                    false
                }
            }
            _ => true,
        }
    }
}

/// Telemetry handles for one gate's health machines. Transitions become
/// `health.<scope>.transition.<from>_<to>` counters; on every transition
/// the time spent in the state being left is recorded into a
/// `health.<scope>.time_in.<state>_ns` histogram (controller-local ns,
/// so the figures are deterministic across runs).
struct HealthObs {
    registry: Registry,
    prefix: String,
    transitions: BTreeMap<(u8, u8), Counter>,
    time_in: BTreeMap<u8, Histogram>,
    /// Last known (state, since_ns) per path — the baseline for the
    /// time-in-state figure. A path enters at `Up` on first observation.
    last: BTreeMap<u16, (HealthState, u64)>,
}

/// Stable small index for metric-map keys (`HealthState` is not `Ord`).
fn state_idx(s: HealthState) -> u8 {
    match s {
        HealthState::Up => 0,
        HealthState::Suspect => 1,
        HealthState::Down => 2,
        HealthState::Probing => 3,
    }
}

impl HealthObs {
    fn new(registry: &Registry, scope: &str) -> Self {
        HealthObs {
            registry: registry.clone(),
            prefix: format!("health.{scope}"),
            transitions: BTreeMap::new(),
            time_in: BTreeMap::new(),
            last: BTreeMap::new(),
        }
    }

    /// Start the time-in-state clock for a path first seen at `now_ns`.
    fn ensure(&mut self, path: u16, now_ns: u64) {
        self.last.entry(path).or_insert((HealthState::Up, now_ns));
    }

    fn on_transitions(&mut self, events: &[HealthTransition]) {
        for t in events {
            let key = (state_idx(t.from), state_idx(t.to));
            let (registry, prefix) = (&self.registry, &self.prefix);
            self.transitions
                .entry(key)
                .or_insert_with(|| {
                    registry.counter(&format!("{prefix}.transition.{}_{}", t.from, t.to))
                })
                .inc();
            if let Some((_, since)) = self.last.get(&t.path).copied() {
                self.time_in
                    .entry(state_idx(t.from))
                    .or_insert_with(|| {
                        registry.histogram(&format!("{prefix}.time_in.{}_ns", t.from))
                    })
                    .record(t.at_ns.saturating_sub(since));
            }
            self.last.insert(t.path, (t.to, t.at_ns));
        }
    }
}

/// Wrap any [`PathPolicy`] with liveness gating: non-`Up`/`Suspect`
/// paths are hidden from the inner policy *and* scrubbed from whatever
/// it returns, so a blackholed path is never selected. When every path
/// is excluded the selection degrades to the BGP-default tunnel
/// (path 0) — the status-quo §2 behaviour, and the only honest choice
/// when nothing is measurably alive.
pub struct HealthGated {
    inner: Box<dyn PathPolicy>,
    cfg: HealthConfig,
    paths: BTreeMap<u16, PathHealth>,
    timeline: HealthTimeline,
    name: String,
    /// The tunnel to fall back to when everything is down.
    fallback: u16,
    /// Monitor-only: health machines advance and the timeline records
    /// transitions, but the inner decision passes through unfiltered.
    monitor_only: bool,
    obs: Option<HealthObs>,
}

impl HealthGated {
    /// Gate `inner` with the given thresholds.
    pub fn new(inner: Box<dyn PathPolicy>, cfg: HealthConfig) -> Self {
        let name = format!("health-gated({})", inner.name());
        HealthGated {
            inner,
            cfg,
            paths: BTreeMap::new(),
            timeline: Arc::new(Mutex::new(Vec::new())),
            name,
            fallback: 0,
            monitor_only: false,
            obs: None,
        }
    }

    /// Use a different all-down fallback than path 0.
    pub fn with_fallback(mut self, path: u16) -> Self {
        self.fallback = path;
        self
    }

    /// Export health telemetry into `registry` under `health.<scope>.…`
    /// (scope is typically the local AS number). Transition counters and
    /// time-in-state histograms; free when the `obs` feature is off.
    pub fn with_obs(mut self, registry: &Registry, scope: &str) -> Self {
        self.obs = Some(HealthObs::new(registry, scope));
        self
    }

    /// Disable enforcement: health machines still run and the timeline
    /// still records transitions, but the inner policy sees every path
    /// and its decision is installed verbatim — even onto a dead path.
    ///
    /// This exists for exactly one purpose: *testing the invariant
    /// checker*. A checker asserting "`HealthGated` never forwards onto
    /// a known-dead path" is vacuous unless a deliberately broken
    /// configuration can demonstrate the violation being caught. Do not
    /// use in experiments measuring Tango itself.
    pub fn monitor_only(mut self) -> Self {
        self.monitor_only = true;
        self
    }

    /// A shareable handle to the transition timeline (clone it before
    /// handing the policy to a switch).
    pub fn timeline(&self) -> HealthTimeline {
        Arc::clone(&self.timeline)
    }

    /// Current state of one path (`Up` if never observed).
    pub fn state(&self, path: u16) -> HealthState {
        self.paths
            .get(&path)
            .map(|h| h.state())
            .unwrap_or(HealthState::Up)
    }

    fn selectable(state: HealthState) -> bool {
        matches!(state, HealthState::Up | HealthState::Suspect)
    }
}

impl PathPolicy for HealthGated {
    fn decide(&mut self, now_local_ns: u64, paths: &BTreeMap<u16, PathSnapshot>) -> Selection {
        // 1. Advance every path's health machine.
        let mut events = Vec::new();
        for (id, snap) in paths {
            if let Some(obs) = &mut self.obs {
                obs.ensure(*id, now_local_ns);
            }
            let h = self
                .paths
                .entry(*id)
                .or_insert_with(|| PathHealth::new(*id));
            h.observe(now_local_ns, snap, &self.cfg, &mut events);
        }
        // 2. The inner policy only ever sees selectable paths (all of
        // them in monitor-only mode, where enforcement is disabled).
        let visible: BTreeMap<u16, PathSnapshot> = paths
            .iter()
            .filter(|(id, _)| self.monitor_only || Self::selectable(self.state(**id)))
            .map(|(id, s)| (*id, *s))
            .collect();
        let decision = if self.monitor_only {
            self.inner.decide(now_local_ns, &visible)
        } else if visible.is_empty() {
            // Everything is down: degrade to the BGP default rather than
            // steering into a known blackhole — and never panic.
            Selection::Single(self.fallback)
        } else {
            // 3. Belt and braces: scrub anything non-selectable from the
            // decision too (an inner policy may hold hysteresis state
            // pointing at a path that just died, or ignore its input
            // entirely, like a pinned StaticPolicy).
            match self.inner.decide(now_local_ns, &visible) {
                Selection::Single(p) if !Self::selectable(self.state(p)) => {
                    let best = visible.keys().next().copied().unwrap_or(self.fallback);
                    Selection::Single(best)
                }
                Selection::Weighted(w) => {
                    let kept: Vec<(u16, u32)> = w
                        .into_iter()
                        .filter(|(p, _)| Self::selectable(self.state(*p)))
                        .collect();
                    match kept.len() {
                        0 => Selection::Single(
                            visible.keys().next().copied().unwrap_or(self.fallback),
                        ),
                        1 => Selection::Single(kept[0].0),
                        _ => Selection::Weighted(kept),
                    }
                }
                s => s,
            }
        };
        if !events.is_empty() {
            if let Some(obs) = &mut self.obs {
                obs.on_transitions(&events);
            }
            self.timeline.lock().extend(events);
        }
        decision
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn allow_probe(&mut self, now_local_ns: u64, path: u16) -> bool {
        let Some(h) = self.paths.get_mut(&path) else {
            return true; // never observed: probe freely
        };
        let mut events = Vec::new();
        let allowed = h.allow_probe(now_local_ns, &mut events);
        if !events.is_empty() {
            if let Some(obs) = &mut self.obs {
                obs.on_transitions(&events);
            }
            self.timeline.lock().extend(events);
        }
        allowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_dataplane::StaticPolicy;

    fn cfg() -> HealthConfig {
        HealthConfig {
            suspect_after_ns: 200,
            down_after_ns: 500,
            loss_threshold: 0.5,
            backoff_initial_ns: 1_000,
            backoff_max_ns: 8_000,
            recovery_successes: 2,
            jitter: 0.0, // exact arithmetic in unit tests
            jitter_seed: 7,
        }
    }

    fn snap(samples: u64, silence: u64, loss: f64) -> PathSnapshot {
        PathSnapshot {
            owd_ewma_ns: Some(30e6),
            last_owd_ns: Some(30e6),
            jitter_ns: Some(1e4),
            loss_rate: loss,
            samples,
            staleness_ns: Some(0),
            silence_ns: Some(silence),
        }
    }

    /// Drive one observation, returning the transitions it produced.
    fn step(h: &mut PathHealth, now: u64, s: PathSnapshot) -> Vec<(HealthState, HealthState)> {
        let mut out = Vec::new();
        h.observe(now, &s, &cfg(), &mut out);
        out.into_iter().map(|t| (t.from, t.to)).collect()
    }

    // ---- exhaustive transition table --------------------------------
    //
    //  state    | condition                              | next
    //  ---------+----------------------------------------+---------
    //  Up       | silence < suspect, loss < thr          | Up
    //  Up       | silence ≥ suspect                      | Suspect
    //  Up       | loss ≥ thr                             | Suspect
    //  Up       | silence ≥ down (coarse tick)           | Suspect+Down
    //  Suspect  | silence back < suspect, loss < thr     | Up
    //  Suspect  | suspect ≤ silence < down               | Suspect
    //  Suspect  | silence ≥ down                         | Down
    //  Down     | now < next_probe_at                    | Down
    //  Down     | now ≥ next_probe_at                    | Probing
    //  Probing  | progress × recovery_successes          | Up
    //  Probing  | progress < recovery_successes          | Probing
    //  Probing  | window elapses, no progress            | Down (2× backoff)

    #[test]
    fn up_stays_up_while_fresh() {
        let mut h = PathHealth::new(0);
        assert_eq!(step(&mut h, 100, snap(10, 0, 0.0)), vec![]);
        assert_eq!(h.state(), HealthState::Up);
    }

    #[test]
    fn up_to_suspect_on_silence() {
        let mut h = PathHealth::new(0);
        step(&mut h, 100, snap(10, 0, 0.0));
        let t = step(&mut h, 400, snap(10, 300, 0.0));
        assert_eq!(t, vec![(HealthState::Up, HealthState::Suspect)]);
    }

    #[test]
    fn up_to_suspect_on_loss() {
        let mut h = PathHealth::new(0);
        let t = step(&mut h, 100, snap(10, 0, 0.9));
        assert_eq!(t, vec![(HealthState::Up, HealthState::Suspect)]);
    }

    #[test]
    fn up_blows_through_suspect_on_coarse_tick() {
        // A control period longer than down_after jumps Up → Down in one
        // tick; the timeline still records the intermediate Suspect hop.
        let mut h = PathHealth::new(0);
        step(&mut h, 100, snap(10, 0, 0.0));
        let t = step(&mut h, 800, snap(10, 700, 0.0));
        assert_eq!(
            t,
            vec![
                (HealthState::Up, HealthState::Suspect),
                (HealthState::Suspect, HealthState::Down),
            ]
        );
    }

    #[test]
    fn suspect_recovers_to_up() {
        let mut h = PathHealth::new(0);
        step(&mut h, 100, snap(10, 0, 0.0)); // baseline
        step(&mut h, 400, snap(10, 300, 0.0)); // → Suspect
        let t = step(&mut h, 500, snap(11, 0, 0.0)); // fresh delivery
        assert_eq!(t, vec![(HealthState::Suspect, HealthState::Up)]);
    }

    #[test]
    fn suspect_holds_between_thresholds() {
        let mut h = PathHealth::new(0);
        step(&mut h, 100, snap(10, 0, 0.0)); // baseline
        step(&mut h, 400, snap(10, 300, 0.0)); // → Suspect
        assert_eq!(step(&mut h, 500, snap(10, 400, 0.0)), vec![]);
        assert_eq!(h.state(), HealthState::Suspect);
    }

    #[test]
    fn suspect_to_down_after_window() {
        let mut h = PathHealth::new(0);
        step(&mut h, 100, snap(10, 0, 0.0)); // baseline
        step(&mut h, 400, snap(10, 300, 0.0)); // → Suspect
        let t = step(&mut h, 700, snap(10, 600, 0.0));
        assert_eq!(t, vec![(HealthState::Suspect, HealthState::Down)]);
    }

    #[test]
    fn down_holds_until_backoff_then_probes() {
        let mut h = PathHealth::new(0);
        step(&mut h, 400, snap(10, 300, 0.0));
        step(&mut h, 700, snap(10, 600, 0.0)); // → Down, backoff 1000
        assert_eq!(step(&mut h, 1_000, snap(10, 900, 0.0)), vec![]);
        assert_eq!(h.state(), HealthState::Down);
        let t = step(&mut h, 1_700, snap(10, 1_600, 0.0));
        assert_eq!(t, vec![(HealthState::Down, HealthState::Probing)]);
    }

    #[test]
    fn probing_needs_consecutive_successes() {
        let mut h = PathHealth::new(0);
        step(&mut h, 400, snap(10, 300, 0.0));
        step(&mut h, 700, snap(10, 600, 0.0)); // Down
        step(&mut h, 1_700, snap(10, 1_600, 0.0)); // Probing
                                                   // First fresh delivery: not yet readmitted (hysteresis = 2).
        assert_eq!(step(&mut h, 1_750, snap(11, 0, 0.0)), vec![]);
        assert_eq!(h.state(), HealthState::Probing);
        let t = step(&mut h, 1_800, snap(12, 0, 0.0));
        assert_eq!(t, vec![(HealthState::Probing, HealthState::Up)]);
    }

    #[test]
    fn probing_failure_doubles_backoff() {
        let mut h = PathHealth::new(0);
        step(&mut h, 400, snap(10, 300, 0.0));
        step(&mut h, 700, snap(10, 600, 0.0)); // Down #1: backoff 1000
        assert_eq!(h.backoff_ns, 1_000);
        step(&mut h, 1_700, snap(10, 1_600, 0.0)); // Probing
                                                   // Attempt window (suspect_after = 200) elapses without progress.
        let t = step(&mut h, 1_950, snap(10, 1_850, 0.0));
        assert_eq!(t, vec![(HealthState::Probing, HealthState::Down)]);
        assert_eq!(h.backoff_ns, 2_000, "second attempt doubles");
        // Keep failing: the backoff caps at backoff_max_ns.
        let mut now = 1_950;
        for _ in 0..6 {
            now += h.backoff_ns + 1;
            step(&mut h, now, snap(10, now, 0.0)); // → Probing
            now += 250;
            step(&mut h, now, snap(10, now, 0.0)); // window fails → Down
        }
        assert_eq!(h.backoff_ns, 8_000, "capped");
    }

    #[test]
    fn recovery_resets_backoff() {
        let mut h = PathHealth::new(0);
        step(&mut h, 400, snap(10, 300, 0.0));
        step(&mut h, 700, snap(10, 600, 0.0)); // Down
        step(&mut h, 1_700, snap(10, 1_600, 0.0)); // Probing
        step(&mut h, 1_750, snap(11, 0, 0.0));
        step(&mut h, 1_800, snap(12, 0, 0.0)); // → Up
        assert_eq!(h.state(), HealthState::Up);
        // Dies again: backoff restarts from the initial value.
        step(&mut h, 2_100, snap(12, 300, 0.0));
        step(&mut h, 2_400, snap(12, 600, 0.0));
        assert_eq!(h.state(), HealthState::Down);
        assert_eq!(h.backoff_ns, 1_000);
    }

    #[test]
    fn allow_probe_gates_down_paths_only() {
        let mut h = PathHealth::new(0);
        let mut out = Vec::new();
        assert!(h.allow_probe(0, &mut out), "Up probes freely");
        step(&mut h, 400, snap(10, 300, 0.0)); // Suspect
        assert!(h.allow_probe(450, &mut out), "Suspect probes freely");
        step(&mut h, 700, snap(10, 600, 0.0)); // Down, next probe at 1700
        assert!(!h.allow_probe(1_000, &mut out), "Down withholds");
        assert!(h.allow_probe(1_700, &mut out), "backoff expiry releases");
        assert_eq!(h.state(), HealthState::Probing);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, HealthState::Probing);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mut c = cfg();
        c.jitter = 0.1;
        let h = PathHealth::new(3);
        let a = h.jittered_backoff(&c);
        let b = h.jittered_backoff(&c);
        assert_eq!(a, b, "same seed/path/attempt ⇒ same jitter");
        let lo = (1_000.0 * 0.9) as u64;
        let hi = (1_000.0 * 1.1) as u64;
        assert!((lo..=hi).contains(&a), "jittered {a} outside ±10 %");
        let mut c2 = c;
        c2.jitter_seed = 8;
        assert_ne!(
            h.jittered_backoff(&c2),
            a,
            "different seed ⇒ different jitter"
        );
    }

    // ---- HealthGated -------------------------------------------------

    fn paths(entries: &[(u16, u64, u64)]) -> BTreeMap<u16, PathSnapshot> {
        entries
            .iter()
            .map(|&(id, samples, silence)| (id, snap(samples, silence, 0.0)))
            .collect()
    }

    #[test]
    fn gated_hides_down_paths_from_inner() {
        use crate::policy::LowestOwdPolicy;
        let mut g = HealthGated::new(Box::new(LowestOwdPolicy::new(0.0)), cfg());
        // Path 1 is the fastest but goes dark; path 0 keeps delivering.
        let mut m = paths(&[(0, 100, 0), (1, 100, 0)]);
        m.get_mut(&1).unwrap().owd_ewma_ns = Some(20e6);
        assert_eq!(
            g.decide(100, &m),
            Selection::Single(1),
            "fastest wins while up"
        );
        let mut dark = m.clone();
        dark.get_mut(&1).unwrap().silence_ns = Some(700);
        dark.get_mut(&0).unwrap().samples = 200;
        assert_eq!(
            g.decide(800, &dark),
            Selection::Single(0),
            "dead path excluded"
        );
        assert_eq!(g.state(1), HealthState::Down);
        let tl = g.timeline();
        let recorded = tl.lock().clone();
        assert!(recorded
            .iter()
            .any(|t| t.path == 1 && t.to == HealthState::Down && t.at_ns == 800));
    }

    #[test]
    fn gated_scrubs_static_pins() {
        // A pinned StaticPolicy ignores its input entirely: the gate must
        // scrub the dead path from its output.
        let mut g = HealthGated::new(Box::new(StaticPolicy::single(1, "pin-1")), cfg());
        let m = paths(&[(0, 100, 0), (1, 100, 0)]);
        assert_eq!(g.decide(100, &m), Selection::Single(1));
        let mut dark = m.clone();
        dark.get_mut(&1).unwrap().silence_ns = Some(700);
        dark.get_mut(&0).unwrap().samples = 200;
        assert_eq!(g.decide(800, &dark), Selection::Single(0), "pin overridden");
    }

    #[test]
    fn monitor_only_lets_broken_pin_through() {
        // The invariant-checker fixture: with enforcement disabled the
        // pinned policy forwards into the dead path — while the timeline
        // still records the path going Down (the checker's evidence).
        let mut g =
            HealthGated::new(Box::new(StaticPolicy::single(1, "pin-1")), cfg()).monitor_only();
        let timeline = g.timeline();
        let m = paths(&[(0, 100, 0), (1, 100, 0)]);
        assert_eq!(g.decide(100, &m), Selection::Single(1));
        let mut dark = m.clone();
        dark.get_mut(&1).unwrap().silence_ns = Some(700);
        dark.get_mut(&0).unwrap().samples = 200;
        assert_eq!(
            g.decide(800, &dark),
            Selection::Single(1),
            "monitor-only must NOT scrub the dead pin"
        );
        assert_eq!(g.state(1), HealthState::Down);
        assert!(timeline
            .lock()
            .iter()
            .any(|t| t.path == 1 && t.to == HealthState::Down));
    }

    #[test]
    fn gated_scrubs_weighted_selections() {
        let mut g = HealthGated::new(
            Box::new(StaticPolicy::weighted(
                vec![(0, 1), (1, 1), (2, 1)],
                "spray",
            )),
            cfg(),
        );
        let m = paths(&[(0, 100, 0), (1, 100, 0), (2, 100, 0)]);
        assert_eq!(
            g.decide(100, &m),
            Selection::Weighted(vec![(0, 1), (1, 1), (2, 1)])
        );
        let mut dark = m.clone();
        dark.get_mut(&2).unwrap().silence_ns = Some(700);
        for id in [0, 1] {
            dark.get_mut(&id).unwrap().samples = 200;
        }
        assert_eq!(
            g.decide(800, &dark),
            Selection::Weighted(vec![(0, 1), (1, 1)]),
            "dead member dropped"
        );
    }

    #[test]
    fn all_down_degrades_to_fallback_without_panic() {
        use crate::policy::LowestOwdPolicy;
        let mut g = HealthGated::new(Box::new(LowestOwdPolicy::new(0.0)), cfg());
        let m = paths(&[(0, 100, 0), (1, 100, 0)]);
        g.decide(100, &m);
        let mut dark = m.clone();
        for id in [0, 1] {
            dark.get_mut(&id).unwrap().silence_ns = Some(700);
        }
        assert_eq!(g.decide(800, &dark), Selection::Single(0), "BGP default");
        assert_eq!(g.state(0), HealthState::Down);
        assert_eq!(g.state(1), HealthState::Down);
        // And with a custom fallback.
        let mut g2 = HealthGated::new(Box::new(LowestOwdPolicy::new(0.0)), cfg()).with_fallback(3);
        g2.decide(100, &m);
        assert_eq!(g2.decide(800, &dark), Selection::Single(3));
    }

    #[test]
    fn gated_allow_probe_follows_machine() {
        use crate::policy::LowestOwdPolicy;
        let mut g = HealthGated::new(Box::new(LowestOwdPolicy::new(0.0)), cfg());
        assert!(g.allow_probe(0, 7), "unknown path probes freely");
        let m = paths(&[(0, 100, 0), (1, 100, 0)]);
        g.decide(100, &m);
        let mut dark = m.clone();
        dark.get_mut(&1).unwrap().silence_ns = Some(700);
        dark.get_mut(&0).unwrap().samples = 200;
        g.decide(800, &m);
        g.decide(900, &dark);
        assert_eq!(g.state(1), HealthState::Down);
        assert!(g.allow_probe(950, 0), "healthy path probes");
        assert!(!g.allow_probe(950, 1), "down path withheld");
        // Backoff (1000) expires → Probing, probes flow again.
        assert!(g.allow_probe(2_000, 1));
        assert_eq!(g.state(1), HealthState::Probing);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn obs_counts_transitions_and_time_in_state() {
        use crate::policy::LowestOwdPolicy;
        let registry = Registry::default();
        let mut g = HealthGated::new(Box::new(LowestOwdPolicy::new(0.0)), cfg())
            .with_obs(&registry, "65001");
        let m = paths(&[(0, 100, 0), (1, 100, 0)]);
        g.decide(100, &m);
        let mut dark = m.clone();
        dark.get_mut(&1).unwrap().silence_ns = Some(700);
        dark.get_mut(&0).unwrap().samples = 200;
        g.decide(800, &dark); // coarse tick: path 1 goes Up → Suspect → Down
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters
                .get("health.65001.transition.up_suspect")
                .copied(),
            Some(1)
        );
        assert_eq!(
            snap.counters
                .get("health.65001.transition.suspect_down")
                .copied(),
            Some(1)
        );
        let up = snap.histograms.get("health.65001.time_in.up_ns").unwrap();
        assert_eq!(up.count, 1);
        assert_eq!(up.sum, 700, "entered Up at 100, left at 800");
        let suspect = snap
            .histograms
            .get("health.65001.time_in.suspect_ns")
            .unwrap();
        assert_eq!(suspect.count, 1);
        assert_eq!(suspect.sum, 0, "both hops of the coarse tick land at 800");
    }

    #[test]
    fn gated_name_reflects_inner() {
        use crate::policy::LowestOwdPolicy;
        let g = HealthGated::new(Box::new(LowestOwdPolicy::new(0.0)), cfg());
        assert_eq!(g.name(), "health-gated(lowest-owd)");
    }
}
