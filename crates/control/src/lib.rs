//! # tango-control — discovery, provisioning, and routing logic
//!
//! The cooperative control plane on top of `tango-bgp` and below the
//! experiment harness:
//!
//! * [`discovery`] — the §4.1 step-2 algorithm: iteratively suppress the
//!   currently selected route with a BGP community, observe what BGP
//!   falls back to at the other edge, and record (path, community set)
//!   pairs until the prefix goes unreachable.
//! * [`config`] — §4.1 step-3 provisioning: carve one prefix per
//!   discovered path out of each side's address block, announce each
//!   with the community set that pins it, verify the pinning against the
//!   converged BGP state, and emit the tunnel tables for both switches.
//! * [`policy`] — implementations of the data-plane's
//!   [`tango_dataplane::PathPolicy`]: the BGP-default baseline, lowest
//!   one-way-delay with hysteresis, jitter-aware and loss-aware scoring,
//!   and an inverse-latency weighted split.
//! * [`health`] — per-tunnel liveness: the
//!   `Up → Suspect → Down → Probing → Up` state machine, exponential
//!   backoff re-probing, and the [`health::HealthGated`] wrapper that
//!   keeps any policy from ever selecting a blackholed path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod discovery;
pub mod health;
pub mod policy;

pub use config::{provision, ProvisionError, ProvisionedPairing, SideConfig};
pub use discovery::{discover_paths, DiscoveredPath, DiscoveryError};
pub use health::{
    HealthConfig, HealthGated, HealthState, HealthTimeline, HealthTransition, PathHealth,
};
pub use policy::{JitterAwarePolicy, LossAwarePolicy, LowestOwdPolicy, WeightedSplitPolicy};
