//! Path-selection policies — the "logic for how a forwarding decision
//! should be made based on path performance" (§3).
//!
//! All policies implement [`tango_dataplane::PathPolicy`]; the switch
//! calls them at each control tick with snapshots of the *peer's*
//! receive-side measurements and installs the returned [`Selection`].
//!
//! §5 motivates the designs: delay matters (the default path is 30 %
//! slower than the best), jitter matters ("depending on the application,
//! delay and jitter could have a significant impact"), and reacting to
//! live data matters ("selecting an alternate path based on live data is
//! required for optimal performance").

use std::collections::BTreeMap;
use tango_dataplane::{PathPolicy, PathSnapshot, Selection};

/// A path that hasn't delivered for this much longer than the freshest
/// path is considered dead (outage): the sequence-gap loss estimator
/// cannot see losses on a path with *no* arrivals, but staleness can.
pub const DEFAULT_STALENESS_LIMIT_NS: u64 = 1_000_000_000;

fn is_dead(s: &PathSnapshot, limit_ns: u64) -> bool {
    match s.staleness_ns {
        Some(st) => st > limit_ns,
        None => s.samples == 0,
    }
}

/// Pick the path with the lowest smoothed one-way delay, with hysteresis:
/// switch away from the current path only when the challenger is better
/// by more than `hysteresis_ns` (prevents flapping between near-equal
/// paths — flapping reorders TCP streams, the §5 complaint).
#[derive(Debug, Clone)]
pub struct LowestOwdPolicy {
    /// Required improvement before switching, ns.
    pub hysteresis_ns: f64,
    /// Ignore paths with fewer samples than this.
    pub min_samples: u64,
    current: Option<u16>,
}

impl LowestOwdPolicy {
    /// With the given hysteresis.
    pub fn new(hysteresis_ns: f64) -> Self {
        LowestOwdPolicy {
            hysteresis_ns,
            min_samples: 5,
            current: None,
        }
    }
}

fn best_by<F: Fn(&PathSnapshot) -> Option<f64>>(
    paths: &BTreeMap<u16, PathSnapshot>,
    min_samples: u64,
    score: F,
) -> Option<(u16, f64)> {
    paths
        .iter()
        .filter(|(_, s)| s.samples >= min_samples)
        .filter(|(_, s)| !is_dead(s, DEFAULT_STALENESS_LIMIT_NS))
        .filter_map(|(id, s)| score(s).map(|v| (*id, v)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are finite"))
}

impl PathPolicy for LowestOwdPolicy {
    fn decide(&mut self, _now: u64, paths: &BTreeMap<u16, PathSnapshot>) -> Selection {
        let Some((best, best_score)) = best_by(paths, self.min_samples, |s| s.owd_ewma_ns) else {
            // Nothing measured yet: stay where we are (or path 0).
            return Selection::Single(self.current.unwrap_or(0));
        };
        let next = match self.current {
            Some(cur) if cur != best => {
                let cur_dead = paths
                    .get(&cur)
                    .map(|s| is_dead(s, DEFAULT_STALENESS_LIMIT_NS))
                    .unwrap_or(true);
                let cur_score = paths.get(&cur).and_then(|s| s.owd_ewma_ns);
                match (cur_dead, cur_score) {
                    (true, _) => best, // current path went dark: leave now
                    (false, Some(c)) if c - best_score < self.hysteresis_ns => cur,
                    _ => best,
                }
            }
            _ => best,
        };
        self.current = Some(next);
        Selection::Single(next)
    }

    fn name(&self) -> &str {
        "lowest-owd"
    }
}

/// Score = OWD + `jitter_weight` × rolling-window std-dev. For
/// jitter-sensitive applications (video conferencing, drone control)
/// a path with a slightly higher floor but 33× less jitter wins.
#[derive(Debug, Clone)]
pub struct JitterAwarePolicy {
    /// Weight on the jitter term.
    pub jitter_weight: f64,
    /// Required score improvement before switching, ns.
    pub hysteresis_ns: f64,
    /// Ignore paths with fewer samples.
    pub min_samples: u64,
    current: Option<u16>,
}

impl JitterAwarePolicy {
    /// With the given jitter weight and hysteresis.
    pub fn new(jitter_weight: f64, hysteresis_ns: f64) -> Self {
        JitterAwarePolicy {
            jitter_weight,
            hysteresis_ns,
            min_samples: 5,
            current: None,
        }
    }

    fn score(&self, s: &PathSnapshot) -> Option<f64> {
        Some(s.owd_ewma_ns? + self.jitter_weight * s.jitter_ns.unwrap_or(0.0))
    }
}

impl PathPolicy for JitterAwarePolicy {
    fn decide(&mut self, _now: u64, paths: &BTreeMap<u16, PathSnapshot>) -> Selection {
        let Some((best, best_score)) = best_by(paths, self.min_samples, |s| self.score(s)) else {
            return Selection::Single(self.current.unwrap_or(0));
        };
        let next = match self.current {
            Some(cur) if cur != best => {
                let cur_dead = paths
                    .get(&cur)
                    .map(|s| is_dead(s, DEFAULT_STALENESS_LIMIT_NS))
                    .unwrap_or(true);
                let cur_score = paths.get(&cur).and_then(|s| self.score(s));
                match (cur_dead, cur_score) {
                    (true, _) => best,
                    (false, Some(c)) if c - best_score < self.hysteresis_ns => cur,
                    _ => best,
                }
            }
            _ => best,
        };
        self.current = Some(next);
        Selection::Single(next)
    }

    fn name(&self) -> &str {
        "jitter-aware"
    }
}

/// Avoid lossy paths first, then minimize delay: paths with loss above
/// `max_loss` are excluded unless *all* paths exceed it.
#[derive(Debug, Clone)]
pub struct LossAwarePolicy {
    /// Loss-rate ceiling in [0, 1].
    pub max_loss: f64,
    /// Required improvement before switching, ns.
    pub hysteresis_ns: f64,
    /// Ignore paths with fewer samples.
    pub min_samples: u64,
    current: Option<u16>,
}

impl LossAwarePolicy {
    /// With the given loss ceiling.
    pub fn new(max_loss: f64, hysteresis_ns: f64) -> Self {
        LossAwarePolicy {
            max_loss,
            hysteresis_ns,
            min_samples: 5,
            current: None,
        }
    }
}

impl PathPolicy for LossAwarePolicy {
    fn decide(&mut self, _now: u64, paths: &BTreeMap<u16, PathSnapshot>) -> Selection {
        let clean: BTreeMap<u16, PathSnapshot> = paths
            .iter()
            .filter(|(_, s)| {
                s.loss_rate <= self.max_loss && !is_dead(s, DEFAULT_STALENESS_LIMIT_NS)
            })
            .map(|(k, v)| (*k, *v))
            .collect();
        let pool = if clean.is_empty() { paths } else { &clean };
        let Some((best, best_score)) = best_by(pool, self.min_samples, |s| s.owd_ewma_ns) else {
            return Selection::Single(self.current.unwrap_or(0));
        };
        let next = match self.current {
            Some(cur) if cur != best => {
                let cur_ok = pool.contains_key(&cur);
                let cur_score = pool.get(&cur).and_then(|s| s.owd_ewma_ns);
                match (cur_ok, cur_score) {
                    // Current path turned lossy: leave immediately.
                    (false, _) => best,
                    (true, Some(c)) if c - best_score < self.hysteresis_ns => cur,
                    _ => best,
                }
            }
            _ => best,
        };
        self.current = Some(next);
        Selection::Single(next)
    }

    fn name(&self) -> &str {
        "loss-aware"
    }
}

/// Split traffic across all healthy paths with weights inversely
/// proportional to their smoothed delay (§6's load-balancing direction).
#[derive(Debug, Clone)]
pub struct WeightedSplitPolicy {
    /// Paths slower than `best × cutoff_factor` get weight 0.
    pub cutoff_factor: f64,
    /// Ignore paths with fewer samples.
    pub min_samples: u64,
}

impl WeightedSplitPolicy {
    /// With the given cutoff factor (e.g. 1.5 = drop paths 50 % slower
    /// than the best).
    pub fn new(cutoff_factor: f64) -> Self {
        WeightedSplitPolicy {
            cutoff_factor,
            min_samples: 5,
        }
    }
}

impl PathPolicy for WeightedSplitPolicy {
    fn decide(&mut self, _now: u64, paths: &BTreeMap<u16, PathSnapshot>) -> Selection {
        let measured: Vec<(u16, f64)> = paths
            .iter()
            .filter(|(_, s)| s.samples >= self.min_samples)
            .filter(|(_, s)| !is_dead(s, DEFAULT_STALENESS_LIMIT_NS))
            .filter_map(|(id, s)| s.owd_ewma_ns.map(|v| (*id, v)))
            .collect();
        let Some(best) = measured
            .iter()
            .map(|(_, v)| *v)
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
        else {
            return Selection::Single(0);
        };
        let weights: Vec<(u16, u32)> = measured
            .iter()
            .filter(|(_, v)| *v <= best * self.cutoff_factor)
            .map(|(id, v)| {
                // Inverse-delay weight, normalized to the best = 100.
                (*id, ((best / v) * 100.0).round() as u32)
            })
            .collect();
        match weights.len() {
            0 => Selection::Single(0),
            1 => Selection::Single(weights[0].0),
            _ => Selection::Weighted(weights),
        }
    }

    fn name(&self) -> &str {
        "weighted-split"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(owd_ms: f64, jitter_ms: f64, loss: f64) -> PathSnapshot {
        PathSnapshot {
            owd_ewma_ns: Some(owd_ms * 1e6),
            last_owd_ns: Some(owd_ms * 1e6),
            jitter_ns: Some(jitter_ms * 1e6),
            loss_rate: loss,
            samples: 100,
            staleness_ns: Some(0),
            silence_ns: Some(0),
        }
    }

    fn vultr_like() -> BTreeMap<u16, PathSnapshot> {
        // NTT, Telia, GTT, Level3 with the paper's delay/jitter shape.
        let mut m = BTreeMap::new();
        m.insert(0, snap(36.5, 0.06, 0.0));
        m.insert(1, snap(33.5, 0.33, 0.0));
        m.insert(2, snap(28.2, 0.01, 0.0));
        m.insert(3, snap(41.0, 0.12, 0.0));
        m
    }

    #[test]
    fn lowest_owd_picks_gtt() {
        let mut p = LowestOwdPolicy::new(500_000.0);
        assert_eq!(p.decide(0, &vultr_like()), Selection::Single(2));
        assert_eq!(p.name(), "lowest-owd");
    }

    #[test]
    fn lowest_owd_hysteresis_prevents_flapping() {
        let mut p = LowestOwdPolicy::new(1_000_000.0); // 1 ms
        let mut paths = vultr_like();
        assert_eq!(p.decide(0, &paths), Selection::Single(2));
        // Telia improves to within 0.4 ms of GTT: not enough to switch.
        paths.insert(1, snap(27.8, 0.33, 0.0));
        assert_eq!(p.decide(1, &paths), Selection::Single(2));
        // Telia improves past the hysteresis: switch.
        paths.insert(1, snap(27.0, 0.33, 0.0));
        assert_eq!(p.decide(2, &paths), Selection::Single(1));
    }

    #[test]
    fn lowest_owd_reacts_to_current_path_degrading() {
        // The Fig. 4 (middle) scenario: GTT steps +5 ms.
        let mut p = LowestOwdPolicy::new(1_000_000.0);
        let mut paths = vultr_like();
        assert_eq!(p.decide(0, &paths), Selection::Single(2));
        // GTT degrades by only 0.3 ms past Telia: hysteresis holds.
        paths.insert(2, snap(33.8, 0.01, 0.0));
        assert_eq!(
            p.decide(1, &paths),
            Selection::Single(2),
            "hold within hysteresis"
        );
        // The +5 ms step (28.2 → 33.2+ → 36) clears the 1 ms hysteresis.
        paths.insert(2, snap(36.0, 0.01, 0.0));
        assert_eq!(p.decide(2, &paths), Selection::Single(1), "move to Telia");
    }

    #[test]
    fn lowest_owd_no_measurements_stays_put() {
        let mut p = LowestOwdPolicy::new(0.0);
        let empty = BTreeMap::new();
        assert_eq!(p.decide(0, &empty), Selection::Single(0));
        let mut young = BTreeMap::new();
        let mut s = snap(10.0, 0.0, 0.0);
        s.samples = 1; // below min_samples
        young.insert(7, s);
        assert_eq!(p.decide(1, &young), Selection::Single(0));
    }

    #[test]
    fn jitter_aware_prefers_stable_path() {
        // GTT degraded to 33.9 ms but with 0.01 ms jitter; Telia at
        // 33.5 ms with 0.33 ms jitter. With a strong jitter weight the
        // stable path wins despite the higher floor.
        let mut paths = vultr_like();
        paths.insert(2, snap(33.9, 0.01, 0.0));
        let mut latency_only = LowestOwdPolicy::new(0.0);
        assert_eq!(latency_only.decide(0, &paths), Selection::Single(1));
        let mut jitter_aware = JitterAwarePolicy::new(5.0, 0.0);
        assert_eq!(jitter_aware.decide(0, &paths), Selection::Single(2));
    }

    #[test]
    fn loss_aware_flees_lossy_path_immediately() {
        let mut p = LossAwarePolicy::new(0.01, 5_000_000.0);
        let mut paths = vultr_like();
        assert_eq!(p.decide(0, &paths), Selection::Single(2));
        // GTT starts dropping 10% — hysteresis must NOT hold us there.
        paths.insert(2, snap(28.2, 0.01, 0.10));
        assert_eq!(p.decide(1, &paths), Selection::Single(1));
    }

    #[test]
    fn loss_aware_all_lossy_degrades_to_best_effort() {
        let mut p = LossAwarePolicy::new(0.01, 0.0);
        let mut paths = BTreeMap::new();
        paths.insert(0, snap(36.5, 0.0, 0.5));
        paths.insert(1, snap(33.5, 0.0, 0.9));
        assert_eq!(
            p.decide(0, &paths),
            Selection::Single(1),
            "least-delay among lossy"
        );
    }

    #[test]
    fn weighted_split_weights_inverse_to_delay() {
        let mut p = WeightedSplitPolicy::new(1.5);
        match p.decide(0, &vultr_like()) {
            Selection::Weighted(w) => {
                let get = |id: u16| w.iter().find(|(p, _)| *p == id).map(|(_, wt)| *wt);
                assert_eq!(get(2), Some(100)); // best path
                let ntt = get(0).unwrap();
                assert!(ntt < 100 && ntt > 70, "ntt weight {ntt}");
                assert_eq!(get(3), Some(69), "41 ms path: 28.2/41*100");
            }
            s => panic!("expected weighted, got {s:?}"),
        }
    }

    #[test]
    fn weighted_split_cuts_outliers() {
        let mut p = WeightedSplitPolicy::new(1.2);
        let mut paths = vultr_like();
        paths.insert(3, snap(100.0, 0.0, 0.0));
        match p.decide(0, &paths) {
            Selection::Weighted(w) => {
                assert!(w.iter().all(|(id, _)| *id != 3), "100 ms path excluded");
                assert!(w.iter().all(|(id, _)| *id != 0), "36.5 > 28.2*1.2 excluded");
            }
            s => panic!("expected weighted, got {s:?}"),
        }
    }

    #[test]
    fn weighted_split_single_survivor_collapses_to_single() {
        let mut p = WeightedSplitPolicy::new(1.01);
        match p.decide(0, &vultr_like()) {
            Selection::Single(2) => {}
            s => panic!("expected single GTT, got {s:?}"),
        }
    }
}
