//! The iterative path-discovery algorithm of §4.1 (step 2).
//!
//! > *"1) We observed the best BGP route for the destination exported by
//! > Vultr to our server at the source DC. 2) We configured our BIRD
//! > instance at the destination DC to attach a BGP community that would
//! > suppress this route. 3) We waited for BGP to propagate and confirmed
//! > that the source DC now sees an alternate route. 4) We recorded the
//! > communities and routes involved and repeated the process... This was
//! > repeated until suppressing the used route caused the prefix to
//! > become unreachable by the other endpoint."*
//!
//! The function below runs that loop against a [`BgpEngine`]. It probes
//! one *direction*: paths for traffic `observer → announcer` (the
//! announcer's prefix, observed at the other edge).

use std::collections::BTreeSet;
use tango_bgp::{BgpEngine, Community, EngineError};
use tango_net::IpCidr;
use tango_topology::AsId;

/// One discovered wide-area path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveredPath {
    /// The transit sequence, source side first (e.g. `[NTT, COGENT]`),
    /// with borders and private ASNs stripped.
    pub transit_path: Vec<AsId>,
    /// The full AS path as observed at the source edge.
    pub as_path: Vec<AsId>,
    /// The community set that, attached at the announcer, pins an
    /// announcement onto this path (suppressing all preferred routes).
    pub pin_communities: BTreeSet<Community>,
}

impl DiscoveredPath {
    /// The distinguishing carrier: the transit adjacent to the announcing
    /// edge. The paper labels paths by it ("NTT and Cogent ... we refer
    /// to this as Cogent").
    pub fn distinguishing_carrier(&self) -> Option<AsId> {
        self.transit_path.last().copied()
    }
}

/// Discovery failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscoveryError {
    /// The underlying BGP engine failed.
    Engine(EngineError),
    /// The prefix was unreachable before any path was found.
    NoPathAtAll,
    /// The observed best path had no transit hop to suppress (the two
    /// edges are directly connected — nothing for Tango to do).
    DegeneratePath,
}

impl From<EngineError> for DiscoveryError {
    fn from(e: EngineError) -> Self {
        DiscoveryError::Engine(e)
    }
}

impl core::fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DiscoveryError::Engine(e) => write!(f, "BGP engine: {e}"),
            DiscoveryError::NoPathAtAll => write!(f, "prefix unreachable before discovery"),
            DiscoveryError::DegeneratePath => {
                write!(f, "observed path has no transit hop to suppress")
            }
        }
    }
}

impl std::error::Error for DiscoveryError {}

/// Run the discovery loop.
///
/// * `announcer` originates `probe_prefix` (it is announced and finally
///   withdrawn by this function);
/// * `observer` is the other edge, whose best-route view drives the loop;
/// * `infrastructure` lists node ids to strip when extracting the transit
///   path (the two borders; private tenant ASNs are stripped
///   automatically);
/// * at most `max_paths` paths are probed (a safety bound — the loop
///   normally ends when the prefix becomes unreachable).
pub fn discover_paths(
    engine: &mut BgpEngine,
    announcer: AsId,
    observer: AsId,
    probe_prefix: IpCidr,
    infrastructure: &[AsId],
    max_paths: usize,
) -> Result<Vec<DiscoveredPath>, DiscoveryError> {
    let mut discovered = Vec::new();
    let mut communities: BTreeSet<Community> = BTreeSet::new();
    engine.announce(announcer, probe_prefix, communities.clone())?;
    engine.converge()?;

    while discovered.len() < max_paths {
        let Some(as_path) = engine.as_path(observer, probe_prefix).map(<[AsId]>::to_vec) else {
            break; // unreachable: the loop's natural end
        };
        let transit_path: Vec<AsId> = as_path
            .iter()
            .copied()
            .filter(|a| !a.is_private() && !infrastructure.contains(a))
            .collect();
        let Some(&adjacent_transit) = transit_path.last() else {
            engine.withdraw(announcer, probe_prefix)?;
            engine.converge()?;
            return Err(DiscoveryError::DegeneratePath);
        };
        discovered.push(DiscoveredPath {
            transit_path,
            as_path,
            pin_communities: communities.clone(),
        });
        // Suppress the transit the announcement currently exits through.
        communities.insert(Community::NoExportTo(adjacent_transit));
        engine.set_announcement_communities(announcer, probe_prefix, communities.clone())?;
        engine.converge()?;
    }

    // Clean up the probe announcement.
    engine.withdraw(announcer, probe_prefix)?;
    engine.converge()?;

    if discovered.is_empty() {
        return Err(DiscoveryError::NoPathAtAll);
    }
    Ok(discovered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_topology::vultr::{
        vultr_scenario, COGENT, GTT, LEVEL3, NTT, TELIA, TENANT_LA, TENANT_NY, VULTR_LA, VULTR_NY,
    };

    fn engine() -> BgpEngine {
        let s = vultr_scenario();
        let mut e = BgpEngine::new(s.topology.clone());
        for border in [VULTR_LA, VULTR_NY] {
            e.set_strip_private(border, true).unwrap();
            e.set_honor_actions(border, true).unwrap();
            e.set_neighbor_pref(border, s.neighbor_pref[&border].clone())
                .unwrap();
        }
        e
    }

    fn pfx(s: &str) -> IpCidr {
        s.parse().unwrap()
    }

    #[test]
    fn discovers_fig3_paths_ny_to_la() {
        let mut e = engine();
        let paths = discover_paths(
            &mut e,
            TENANT_LA,
            TENANT_NY,
            pfx("2001:db8:fe::/48"),
            &[VULTR_LA, VULTR_NY],
            8,
        )
        .unwrap();
        let transits: Vec<Vec<AsId>> = paths.iter().map(|p| p.transit_path.clone()).collect();
        assert_eq!(
            transits,
            vec![vec![NTT], vec![TELIA], vec![GTT], vec![NTT, LEVEL3]],
            "Fig. 3 NY→LA order"
        );
        // Pin sets are cumulative suppressions.
        assert!(paths[0].pin_communities.is_empty());
        assert_eq!(paths[2].pin_communities.len(), 2);
        assert_eq!(paths[3].distinguishing_carrier(), Some(LEVEL3));
    }

    #[test]
    fn discovers_fig3_paths_la_to_ny() {
        let mut e = engine();
        let paths = discover_paths(
            &mut e,
            TENANT_NY,
            TENANT_LA,
            pfx("2001:db8:fd::/48"),
            &[VULTR_LA, VULTR_NY],
            8,
        )
        .unwrap();
        let transits: Vec<Vec<AsId>> = paths.iter().map(|p| p.transit_path.clone()).collect();
        assert_eq!(
            transits,
            vec![vec![NTT], vec![TELIA], vec![GTT], vec![NTT, COGENT]],
            "Fig. 3 LA→NY order, 4th labeled Cogent"
        );
        assert_eq!(paths[3].distinguishing_carrier(), Some(COGENT));
    }

    #[test]
    fn discovery_cleans_up_probe_prefix() {
        let mut e = engine();
        let p = pfx("2001:db8:fc::/48");
        discover_paths(&mut e, TENANT_LA, TENANT_NY, p, &[VULTR_LA, VULTR_NY], 8).unwrap();
        assert!(
            e.best_route(TENANT_NY, p).is_none(),
            "probe must be withdrawn"
        );
        assert!(e.best_route(VULTR_NY, p).is_none());
    }

    #[test]
    fn max_paths_bounds_the_loop() {
        let mut e = engine();
        let paths = discover_paths(
            &mut e,
            TENANT_LA,
            TENANT_NY,
            pfx("2001:db8:fb::/48"),
            &[VULTR_LA, VULTR_NY],
            2,
        )
        .unwrap();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].transit_path, vec![NTT]);
        assert_eq!(paths[1].transit_path, vec![TELIA]);
    }

    #[test]
    fn observer_without_route_errors() {
        // Announce from a node the observer can't reach: poison every
        // transit so nothing propagates.
        let mut e = engine();
        let p = pfx("2001:db8:fa::/48");
        // Pre-poison: originate with all transits in the path, so every
        // transit drops it. Discovery then sees no path at all.
        e.announce_poisoned(
            TENANT_LA,
            p,
            Default::default(),
            &[NTT, TELIA, GTT, LEVEL3, COGENT],
        )
        .unwrap();
        e.converge().unwrap();
        // discover_paths would re-announce over the poisoned origination;
        // emulate by checking the observer's view directly.
        assert!(e.as_path(TENANT_NY, p).is_none());
    }

    #[test]
    fn as_paths_are_private_free() {
        let mut e = engine();
        let paths = discover_paths(
            &mut e,
            TENANT_LA,
            TENANT_NY,
            pfx("2001:db8:f9::/48"),
            &[VULTR_LA, VULTR_NY],
            8,
        )
        .unwrap();
        for p in &paths {
            assert!(p.as_path.iter().all(|a| !a.is_private()), "{:?}", p.as_path);
        }
    }
}
