//! Property-based tests for the routing invariants of §4.1 discovery
//! over generated internet-scale topologies (satellite (a) of the
//! scalability tentpole): every path the suppress-and-observe loop
//! surfaces must be valley-free under the Gao-Rexford labels, must be a
//! real adjacency chain with positive propagation delay, and discovery
//! must leave no probe state behind.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tango_bgp::policy::path_is_valley_free;
use tango_bgp::BgpEngine;
use tango_control::discover_paths;
use tango_net::IpCidr;
use tango_topology::gen::{try_generate, GenParams, Generated};
use tango_topology::AsId;

/// A small internet draw: big enough for real transit hierarchies,
/// small enough for 64 cases of all-pairs discovery.
fn small_internet() -> impl Strategy<Value = GenParams> {
    (40usize..100, 3usize..5, any::<u64>())
        .prop_map(|(ases, edges, seed)| GenParams::internet(ases, edges, seed))
}

fn probe(i: usize) -> IpCidr {
    format!("2001:db8:{:x}::/48", 0xf00 + i)
        .parse()
        .expect("static prefix template")
}

/// A converged-ready engine over the generated graph: every edge site
/// honors the action communities its own announcements will carry.
fn engine(g: &Generated) -> BgpEngine {
    let mut e = BgpEngine::new(g.topology.clone());
    for &pop in &g.edge_sites {
        e.set_honor_actions(pop, true).expect("edge exists");
    }
    e
}

/// Run discovery for every unordered edge-site pair, handing each
/// discovered path (with its full observer-rooted node sequence) to
/// `check`.
fn for_all_pairs(
    g: &Generated,
    mut check: impl FnMut(AsId, AsId, usize, &[AsId]) -> Result<(), String>,
) -> Result<(), String> {
    let mut e = engine(g);
    for i in 0..g.edge_sites.len() {
        for j in (i + 1)..g.edge_sites.len() {
            let (observer, announcer) = (g.edge_sites[i], g.edge_sites[j]);
            let paths = discover_paths(
                &mut e,
                announcer,
                observer,
                probe(j),
                &[announcer, observer],
                8,
            )
            .expect("connected valley-free graph: every pair discovers");
            prop_assert!(
                paths.len() >= 2,
                "pair {observer:?}->{announcer:?}: {} paths, multihoming guarantees >= 2",
                paths.len()
            );
            for (k, p) in paths.iter().enumerate() {
                let mut nodes = Vec::with_capacity(p.as_path.len() + 1);
                nodes.push(observer);
                nodes.extend_from_slice(&p.as_path);
                check(observer, announcer, k, &nodes)?;
            }
        }
    }
    Ok(())
}

proptest! {
    /// Satellite (a): every path installed by discovery is valley-free
    /// under the generated Gao-Rexford customer/provider/peer labels —
    /// the suppression loop can only surface routes the export policy
    /// was willing to propagate.
    #[test]
    fn discovered_paths_are_valley_free(params in small_internet()) {
        let g = try_generate(&params).expect("internet preset is valid");
        for_all_pairs(&g, |observer, announcer, k, nodes| {
            prop_assert!(
                path_is_valley_free(&g.topology, nodes),
                "pair {observer:?}->{announcer:?} path {k} has a valley: {nodes:?}"
            );
            Ok(())
        })?;
    }

    /// Every discovered path is a chain of real adjacencies ending at
    /// the announcer, with a positive total propagation delay — the
    /// property the scalability sweep's stretch column rests on.
    #[test]
    fn discovered_paths_are_real_adjacency_chains(params in small_internet()) {
        let g = try_generate(&params).expect("internet preset is valid");
        for_all_pairs(&g, |observer, announcer, k, nodes| {
            prop_assert!(
                nodes.last() == Some(&announcer),
                "pair {observer:?}->{announcer:?} path {k} does not end at the announcer"
            );
            let delay = g.topology.path_base_delay_ns(nodes);
            prop_assert!(
                delay.is_some_and(|d| d > 0),
                "pair {observer:?}->{announcer:?} path {k} is not adjacent: {nodes:?}"
            );
            Ok(())
        })?;
    }

    /// Discovery is hermetic: after the loop, no speaker anywhere in
    /// the graph still holds the probe prefix in its Loc-RIB — probes
    /// must never leak into later pairs or the artifact state.
    #[test]
    fn discovery_withdraws_all_probe_state(params in small_internet()) {
        let g = try_generate(&params).expect("internet preset is valid");
        let mut e = engine(&g);
        let (observer, announcer) = (g.edge_sites[0], g.edge_sites[1]);
        let prefix = probe(1);
        discover_paths(&mut e, announcer, observer, prefix, &[announcer, observer], 8)
            .expect("pair discovers");
        for node in g.topology.nodes() {
            prop_assert!(
                e.best_route(node.id, prefix).is_none(),
                "probe survived at {:?}", node.id
            );
        }
    }

    /// The valley-free checker itself rejects fabricated valleys on the
    /// generated graph: a route that descends to a customer and climbs
    /// back up must be refused, whatever the draw.
    #[test]
    fn checker_rejects_fabricated_valleys(params in small_internet()) {
        let g = try_generate(&params).expect("internet preset is valid");
        // Build provider -> transit -> provider detours: down then up.
        let mut checked = 0usize;
        for &t in &g.transits {
            let providers: Vec<AsId> = g.topology.providers(t).into_iter().collect();
            if providers.len() < 2 {
                continue;
            }
            let valley = [providers[0], t, providers[1]];
            prop_assert!(
                !path_is_valley_free(&g.topology, &valley),
                "valley accepted: {valley:?}"
            );
            checked += 1;
            if checked >= 8 {
                break;
            }
        }
        prop_assert!(checked > 0, "draw produced no multihomed transit to test");
    }
}

/// Non-random companion: the BTreeSet import above keeps the probe
/// announcements explicit in the one place plain announcements appear.
#[test]
fn engine_announces_with_empty_communities_compile_check() {
    let g = try_generate(&GenParams::internet(60, 3, 1)).expect("valid");
    let mut e = engine(&g);
    e.announce(g.edge_sites[0], probe(0), BTreeSet::new())
        .expect("edge announces");
    e.converge().expect("converges");
    assert!(e.best_route(g.edge_sites[1], probe(0)).is_some());
}
