//! Loss, duplication and reordering from tunnel sequence numbers.
//!
//! §3: *"adding tunnel-specific sequence numbers on packets can allow
//! Tango to additionally compute loss and reordering."* The tracker keeps
//! a sliding bitmap window of recently seen sequence numbers, so memory
//! stays bounded no matter how long the tunnel runs.

/// How one arriving sequence number was classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqEvent {
    /// The next expected (or first) sequence number.
    InOrder,
    /// Ahead of the highest seen: the gap may be loss (or later reorders).
    Advanced {
        /// How many numbers were skipped.
        gap: u32,
    },
    /// Behind the highest seen but not seen before: a reordered arrival
    /// (retroactively shrinks the loss estimate).
    Reordered,
    /// Already seen (duplicate) or too old to classify.
    Duplicate,
}

/// Per-tunnel sequence-number tracker.
///
/// Loss is estimated as "numbers skipped and never subsequently seen
/// within the reorder window". The window is a 1024-entry bitmap; a
/// packet reordered by more than 1024 positions is (conservatively)
/// counted as a duplicate, not a recovery.
#[derive(Debug, Clone)]
pub struct SeqTracker {
    highest: Option<u32>,
    window: [u64; Self::WORDS],
    received: u64,
    duplicates: u64,
    reordered: u64,
    outstanding_gap: u64,
}

impl Default for SeqTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl SeqTracker {
    const WINDOW: u32 = 1024;
    const WORDS: usize = (Self::WINDOW as usize) / 64;

    /// A fresh tracker.
    pub fn new() -> Self {
        SeqTracker {
            highest: None,
            window: [0; Self::WORDS],
            received: 0,
            duplicates: 0,
            reordered: 0,
            outstanding_gap: 0,
        }
    }

    // tango-lint: allow(hot-path-panic) idx < WINDOW = WORDS*64 by the mod, so idx/64 < WORDS
    fn bit(&self, seq: u32) -> bool {
        let idx = (seq % Self::WINDOW) as usize;
        self.window[idx / 64] & (1 << (idx % 64)) != 0
    }

    // tango-lint: allow(hot-path-panic) idx < WINDOW = WORDS*64 by the mod, so idx/64 < WORDS
    fn set_bit(&mut self, seq: u32, value: bool) {
        let idx = (seq % Self::WINDOW) as usize;
        if value {
            self.window[idx / 64] |= 1 << (idx % 64);
        } else {
            self.window[idx / 64] &= !(1 << (idx % 64));
        }
    }

    /// Record an arriving sequence number.
    pub fn record(&mut self, seq: u32) -> SeqEvent {
        match self.highest {
            None => {
                self.highest = Some(seq);
                self.set_bit(seq, true);
                self.received += 1;
                SeqEvent::InOrder
            }
            Some(h) if seq > h => {
                // Clear the bitmap slots we are skipping over so stale
                // bits from WINDOW sequences ago don't read as "seen".
                let gap = seq - h - 1;
                let clear_from = h.saturating_add(1);
                let clear_n = gap.min(Self::WINDOW);
                for s in clear_from..clear_from + clear_n {
                    self.set_bit(s, false);
                }
                self.set_bit(seq, true);
                self.highest = Some(seq);
                self.received += 1;
                self.outstanding_gap += u64::from(gap);
                if gap == 0 {
                    SeqEvent::InOrder
                } else {
                    SeqEvent::Advanced { gap }
                }
            }
            Some(h) => {
                if h - seq >= Self::WINDOW {
                    // Too old to classify against the bitmap.
                    self.duplicates += 1;
                    return SeqEvent::Duplicate;
                }
                if self.bit(seq) {
                    self.duplicates += 1;
                    SeqEvent::Duplicate
                } else {
                    self.set_bit(seq, true);
                    self.received += 1;
                    self.reordered += 1;
                    self.outstanding_gap = self.outstanding_gap.saturating_sub(1);
                    SeqEvent::Reordered
                }
            }
        }
    }

    /// Distinct sequence numbers received.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Duplicate (or unclassifiably late) arrivals.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Arrivals that filled an earlier gap (reordering).
    pub fn reordered(&self) -> u64 {
        self.reordered
    }

    /// Estimated lost packets (gaps never filled).
    pub fn lost(&self) -> u64 {
        self.outstanding_gap
    }

    /// Loss rate estimate in [0, 1].
    pub fn loss_rate(&self) -> f64 {
        let expected = self.received + self.outstanding_gap;
        if expected == 0 {
            0.0
        } else {
            self.outstanding_gap as f64 / expected as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream() {
        let mut t = SeqTracker::new();
        for s in 0..100 {
            assert_eq!(t.record(s), SeqEvent::InOrder);
        }
        assert_eq!(t.received(), 100);
        assert_eq!(t.lost(), 0);
        assert_eq!(t.reordered(), 0);
        assert_eq!(t.loss_rate(), 0.0);
    }

    #[test]
    fn gap_counts_as_loss_until_filled() {
        let mut t = SeqTracker::new();
        t.record(0);
        assert_eq!(t.record(3), SeqEvent::Advanced { gap: 2 });
        assert_eq!(t.lost(), 2);
        assert_eq!(t.record(1), SeqEvent::Reordered);
        assert_eq!(t.lost(), 1);
        assert_eq!(t.record(2), SeqEvent::Reordered);
        assert_eq!(t.lost(), 0);
        assert_eq!(t.reordered(), 2);
    }

    #[test]
    fn duplicates_detected() {
        let mut t = SeqTracker::new();
        t.record(0);
        t.record(1);
        assert_eq!(t.record(1), SeqEvent::Duplicate);
        assert_eq!(t.record(0), SeqEvent::Duplicate);
        assert_eq!(t.duplicates(), 2);
        assert_eq!(t.received(), 2);
    }

    #[test]
    fn permanent_loss_rate() {
        let mut t = SeqTracker::new();
        // Send 0..100, drop every 10th.
        for s in 0..100u32 {
            if s % 10 != 0 {
                t.record(s);
            }
        }
        assert_eq!(t.received(), 90);
        // seq 0 was dropped before anything was seen: the tracker can't
        // know about losses before the first arrival, so 9 are counted.
        assert_eq!(t.lost(), 9);
        assert!((t.loss_rate() - 9.0 / 99.0).abs() < 1e-9);
    }

    #[test]
    fn ancient_arrival_is_duplicate_not_reorder() {
        let mut t = SeqTracker::new();
        t.record(0);
        t.record(5000); // jump far ahead
        assert_eq!(t.record(1), SeqEvent::Duplicate); // outside the 1024 window
        assert_eq!(t.reordered(), 0);
    }

    #[test]
    fn bitmap_wraparound_does_not_alias() {
        let mut t = SeqTracker::new();
        // Fill 0..1024, then 1024 must not read 0's bit as its own.
        for s in 0..1024 {
            t.record(s);
        }
        assert_eq!(t.record(1024), SeqEvent::InOrder);
        assert_eq!(t.duplicates(), 0);
    }

    #[test]
    fn skipped_slots_are_cleared_on_advance() {
        let mut t = SeqTracker::new();
        t.record(0);
        t.record(1);
        t.record(2);
        // Jump exactly one window ahead: slot of 1025 aliases slot of 1,
        // which must have been cleared — 1025 was never received.
        t.record(1024 + 2);
        assert_eq!(t.record(1025), SeqEvent::Reordered);
        assert_eq!(t.duplicates(), 0);
    }

    #[test]
    fn large_jump_does_not_overflow_or_hang() {
        let mut t = SeqTracker::new();
        t.record(0);
        assert_eq!(t.record(u32::MAX), SeqEvent::Advanced { gap: u32::MAX - 1 });
        assert_eq!(t.lost(), u64::from(u32::MAX - 1));
    }

    #[test]
    fn empty_tracker_rates() {
        let t = SeqTracker::new();
        assert_eq!(t.loss_rate(), 0.0);
        assert_eq!(t.received(), 0);
    }
}
