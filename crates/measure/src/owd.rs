//! Adversary-safe one-way-delay arithmetic and plausibility gating.
//!
//! §6 of the paper: *"an attacker might try to inject, drop or modify
//! some of the packets used for measurements."* The receive-side OWD is
//! `rx_local − tx_timestamp` where the timestamp comes straight off the
//! wire — an on-path attacker who rewrites it controls the subtraction's
//! operands. Two defenses live here:
//!
//! * [`saturating_owd_ns`] — the subtraction itself is computed in
//!   128-bit space and clamped to `i64`, so a far-future timestamp
//!   (e.g. `u64::MAX`) can never wrap into a plausible-looking small
//!   delay or panic in a debug build.
//! * [`PlausibilityGate`] — an online sanity filter over the resulting
//!   series: samples that jump implausibly far from the smoothed
//!   reference are quarantined instead of fed to the EWMA the routing
//!   policies rank paths by. A *persistent* level shift (a genuine route
//!   change) is eventually adopted, so the gate delays — not forbids —
//!   large honest changes, while a burst of lies cannot instantly flip a
//!   path ranking.

/// One-way delay `rx_local_ns − tx_timestamp_ns` as a saturating `i64`.
///
/// Clock offsets make genuinely negative OWDs legal (§4.2: only the
/// relative comparison matters), so the result is signed. Adversarial
/// timestamps beyond `i64` range clamp to the nearest representable
/// value instead of wrapping.
pub fn saturating_owd_ns(rx_local_ns: u64, tx_timestamp_ns: u64) -> i64 {
    let diff = i128::from(rx_local_ns) - i128::from(tx_timestamp_ns);
    if diff > i128::from(i64::MAX) {
        i64::MAX
    } else if diff < i128::from(i64::MIN) {
        i64::MIN
    } else {
        diff as i64
    }
}

/// Tuning knobs for a [`PlausibilityGate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlausibilityConfig {
    /// Maximum credible distance from the smoothed reference before a
    /// sample is quarantined, ns. The default (250 ms) is an order of
    /// magnitude above the paper's worst honest excursion (a 78 ms spike
    /// against a 28 ms floor) and an order below the skews an attacker
    /// needs to reorder path rankings instantly.
    pub max_step_ns: f64,
    /// After this many *consecutive* quarantined samples the gate adopts
    /// the new level (a persistent shift is a route change, not a lie).
    pub promote_after: u32,
}

impl Default for PlausibilityConfig {
    fn default() -> Self {
        PlausibilityConfig {
            max_step_ns: 250e6,
            promote_after: 8,
        }
    }
}

/// Online plausibility filter for an OWD series (one per path).
///
/// The reference tracks admitted samples with a gentle EWMA; the first
/// sample is always admitted (there is nothing to compare against — and
/// a wrong bootstrap self-corrects through promotion).
#[derive(Debug, Clone)]
pub struct PlausibilityGate {
    cfg: PlausibilityConfig,
    reference: Option<f64>,
    quarantined_streak: u32,
    rejected: u64,
    promoted: u64,
}

impl Default for PlausibilityGate {
    fn default() -> Self {
        Self::new(PlausibilityConfig::default())
    }
}

impl PlausibilityGate {
    /// Reference smoothing factor (deliberately faster than the 0.05 the
    /// stats pipeline uses, so the gate follows honest drift closely).
    const ALPHA: f64 = 0.2;

    /// A gate with the given thresholds.
    pub fn new(cfg: PlausibilityConfig) -> Self {
        PlausibilityGate {
            cfg,
            reference: None,
            quarantined_streak: 0,
            rejected: 0,
            promoted: 0,
        }
    }

    /// Judge one sample. `true` = admit into the stats pipeline,
    /// `false` = quarantine (count it, drop the value).
    ///
    /// Non-finite samples (NaN/∞ from upstream arithmetic) are always
    /// rejected — they would otherwise poison every running sum they
    /// touch.
    pub fn admit(&mut self, owd_ns: f64) -> bool {
        if !owd_ns.is_finite() {
            self.rejected += 1;
            // A non-finite value is never a credible new level: it does
            // not advance the promotion streak.
            return false;
        }
        let Some(r) = self.reference else {
            self.reference = Some(owd_ns);
            return true;
        };
        if (owd_ns - r).abs() <= self.cfg.max_step_ns {
            self.reference = Some(r + Self::ALPHA * (owd_ns - r));
            self.quarantined_streak = 0;
            return true;
        }
        self.quarantined_streak += 1;
        if self.quarantined_streak >= self.cfg.promote_after {
            // Persistent: adopt the new level and start admitting.
            self.reference = Some(owd_ns);
            self.quarantined_streak = 0;
            self.promoted += 1;
            return true;
        }
        self.rejected += 1;
        false
    }

    /// Samples quarantined so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Level promotions (persistent shifts adopted) so far.
    pub fn promoted(&self) -> u64 {
        self.promoted
    }

    /// The current smoothed reference (None before the first admit).
    pub fn reference_ns(&self) -> Option<f64> {
        self.reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_owd_basics() {
        assert_eq!(saturating_owd_ns(100, 60), 40);
        assert_eq!(saturating_owd_ns(60, 100), -40);
        assert_eq!(saturating_owd_ns(0, 0), 0);
    }

    #[test]
    fn far_future_timestamp_clamps_not_wraps() {
        // The naive `rx as i64 - ts as i64` would wrap u64::MAX to -1 and
        // yield a tiny positive delay; the saturating form pins the floor.
        assert_eq!(saturating_owd_ns(30_000_000, u64::MAX), i64::MIN);
        assert_eq!(saturating_owd_ns(u64::MAX, 0), i64::MAX);
        // Timestamp 2^63 at rx 0: exactly representable as i64::MIN.
        assert_eq!(saturating_owd_ns(0, i64::MAX as u64 + 1), i64::MIN);
        // One further is not, and clamps.
        assert_eq!(saturating_owd_ns(0, i64::MAX as u64 + 2), i64::MIN);
    }

    #[test]
    fn exact_when_in_range() {
        assert_eq!(
            saturating_owd_ns(i64::MAX as u64, 0),
            i64::MAX,
            "largest exact difference"
        );
        assert_eq!(saturating_owd_ns(0, i64::MAX as u64), -i64::MAX);
    }

    #[test]
    fn gate_admits_honest_noise() {
        let mut g = PlausibilityGate::default();
        // Honest Vultr-scale series: 28 ms floor, spikes to 78 ms.
        assert!(g.admit(28.2e6));
        for i in 0..1000 {
            let v = if i % 50 == 0 { 78.0e6 } else { 28.2e6 };
            assert!(g.admit(v), "honest sample {i} rejected");
        }
        assert_eq!(g.rejected(), 0);
    }

    #[test]
    fn gate_quarantines_poison_burst() {
        let mut g = PlausibilityGate::default();
        g.admit(28.2e6);
        // A poisoned burst claiming 10 s delays: quarantined up to the
        // promotion threshold.
        for _ in 0..7 {
            assert!(!g.admit(10e9));
        }
        assert_eq!(g.rejected(), 7);
        // An honest sample in between resets the streak.
        assert!(g.admit(28.3e6));
        assert!(!g.admit(10e9));
    }

    #[test]
    fn persistent_shift_is_promoted() {
        let mut g = PlausibilityGate::default();
        g.admit(28.2e6);
        let mut admitted_at = None;
        for i in 0..20 {
            if g.admit(400e6) {
                admitted_at = Some(i);
                break;
            }
        }
        // The 8th consecutive out-of-band sample (index 7) is adopted.
        assert_eq!(admitted_at, Some(7));
        assert_eq!(g.promoted(), 1);
        // After promotion the new level is the reference.
        assert!(g.admit(401e6));
        assert!(!g.admit(28.2e6), "old level is now the outlier");
    }

    #[test]
    fn non_finite_rejected_and_never_promoted() {
        let mut g = PlausibilityGate::default();
        g.admit(28.2e6);
        for _ in 0..100 {
            assert!(!g.admit(f64::NAN));
            assert!(!g.admit(f64::INFINITY));
        }
        assert_eq!(g.promoted(), 0);
        assert!(g.admit(28.2e6), "gate still healthy after NaN storm");
    }

    #[test]
    fn first_sample_always_admitted() {
        let mut g = PlausibilityGate::default();
        assert!(g.admit(10e9), "no reference to compare against");
        assert_eq!(g.reference_ns(), Some(10e9));
    }

    #[test]
    fn negative_owds_are_fine() {
        // Clock offsets legally produce negative OWDs.
        let mut g = PlausibilityGate::default();
        assert!(g.admit(-5e6));
        assert!(g.admit(-5.1e6));
        assert!(!g.admit(5e9));
    }
}
