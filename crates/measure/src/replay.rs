//! Anti-replay sequence windows.
//!
//! The SipHash trailer (§6) proves a tunnel packet was built by the
//! peer, but proves nothing about *when*: an on-path attacker can record
//! an authenticated packet and retransmit it later, feeding the receiver
//! a stale timestamp with a perfectly valid tag. The classic fix (IPsec
//! ESP, RFC 4303 §3.4.3) is a sliding window over sequence numbers:
//! accept each number exactly once, refuse anything older than the
//! window. [`ReplayWindow`] is that structure — a 1024-entry bitmap like
//! its sibling [`crate::SeqTracker`], but answering "fresh or replayed?"
//! instead of "how much was lost?".

/// A sliding anti-replay window over `u32` tunnel sequence numbers.
#[derive(Debug, Clone)]
pub struct ReplayWindow {
    highest: Option<u32>,
    window: [u64; Self::WORDS],
    accepted: u64,
    rejected: u64,
}

impl Default for ReplayWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplayWindow {
    /// Window size: arrivals more than this many sequence numbers behind
    /// the highest seen are unconditionally rejected. Matches the
    /// `SeqTracker` reorder window, so honest reordering the loss
    /// tracker can classify is never mistaken for replay.
    pub const WINDOW: u32 = 1024;
    const WORDS: usize = (Self::WINDOW as usize) / 64;

    /// A fresh window (accepts any first sequence number).
    pub fn new() -> Self {
        ReplayWindow {
            highest: None,
            window: [0; Self::WORDS],
            accepted: 0,
            rejected: 0,
        }
    }

    // tango-lint: allow(hot-path-panic) idx < WINDOW = WORDS*64 by the mod, so idx/64 < WORDS
    fn bit(&self, seq: u32) -> bool {
        let idx = (seq % Self::WINDOW) as usize;
        self.window[idx / 64] & (1 << (idx % 64)) != 0
    }

    // tango-lint: allow(hot-path-panic) idx < WINDOW = WORDS*64 by the mod, so idx/64 < WORDS
    fn set_bit(&mut self, seq: u32, value: bool) {
        let idx = (seq % Self::WINDOW) as usize;
        if value {
            self.window[idx / 64] |= 1 << (idx % 64);
        } else {
            self.window[idx / 64] &= !(1 << (idx % 64));
        }
    }

    /// Observe an arriving sequence number: `true` = first sighting
    /// (accept), `false` = replayed or too stale to tell (reject).
    pub fn observe(&mut self, seq: u32) -> bool {
        match self.highest {
            None => {
                self.highest = Some(seq);
                self.set_bit(seq, true);
                self.accepted += 1;
                true
            }
            Some(h) if seq > h => {
                // Advancing: clear the slots being skipped so bits from a
                // window ago don't read as "seen".
                let gap = seq - h - 1;
                let clear_from = h.saturating_add(1);
                let clear_n = gap.min(Self::WINDOW);
                for s in clear_from..clear_from + clear_n {
                    self.set_bit(s, false);
                }
                self.set_bit(seq, true);
                self.highest = Some(seq);
                self.accepted += 1;
                true
            }
            Some(h) => {
                if h - seq >= Self::WINDOW {
                    // Older than the window: cannot prove freshness.
                    self.rejected += 1;
                    return false;
                }
                if self.bit(seq) {
                    self.rejected += 1;
                    false
                } else {
                    self.set_bit(seq, true);
                    self.accepted += 1;
                    true
                }
            }
        }
    }

    /// Sequence numbers accepted as fresh.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Arrivals rejected as replayed or stale.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_all_fresh() {
        let mut w = ReplayWindow::new();
        for s in 0..2048 {
            assert!(w.observe(s), "seq {s}");
        }
        assert_eq!(w.accepted(), 2048);
        assert_eq!(w.rejected(), 0);
    }

    #[test]
    fn exact_replay_rejected() {
        let mut w = ReplayWindow::new();
        assert!(w.observe(0));
        assert!(w.observe(1));
        assert!(!w.observe(1), "second sighting is a replay");
        assert!(!w.observe(0));
        assert_eq!(w.rejected(), 2);
    }

    #[test]
    fn reordered_but_fresh_accepted_once() {
        let mut w = ReplayWindow::new();
        w.observe(0);
        w.observe(3);
        assert!(w.observe(1), "late but never seen");
        assert!(w.observe(2));
        assert!(!w.observe(1), "now it's a replay");
    }

    #[test]
    fn stale_beyond_window_rejected() {
        let mut w = ReplayWindow::new();
        w.observe(0);
        w.observe(5000);
        assert!(!w.observe(1), "replay of a pre-window number");
        assert!(
            !w.observe(5000 - ReplayWindow::WINDOW),
            "exactly one window behind"
        );
        assert!(w.observe(5000 - ReplayWindow::WINDOW + 1));
    }

    #[test]
    fn skipped_slots_cleared_on_advance() {
        let mut w = ReplayWindow::new();
        w.observe(0);
        w.observe(1);
        w.observe(2);
        // Jump a full window: slot of 1025 aliases slot of 1 and must
        // have been cleared by the advance.
        w.observe(1024 + 2);
        assert!(w.observe(1025), "aliased slot must read as unseen");
        assert!(!w.observe(1025));
    }

    #[test]
    fn replay_burst_counted() {
        let mut w = ReplayWindow::new();
        for s in 0..100 {
            w.observe(s);
        }
        for s in 50..100 {
            assert!(!w.observe(s));
        }
        assert_eq!(w.rejected(), 50);
        assert_eq!(w.accepted(), 100);
    }

    #[test]
    fn huge_jump_no_overflow() {
        let mut w = ReplayWindow::new();
        w.observe(0);
        assert!(w.observe(u32::MAX));
        assert!(!w.observe(0));
    }
}
