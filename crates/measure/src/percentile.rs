//! Percentiles and summary statistics.

use serde::{Deserialize, Serialize};

/// Nearest-rank percentile of an unsorted slice (`p` in [0, 100]).
/// Returns `None` on an empty slice. O(n log n); the experiment harness
/// calls this on aggregated, not per-packet, data.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in delay data"));
    let p = p.clamp(0.0, 100.0);
    // Nearest-rank: ceil(p/100 * n), 1-based.
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.max(1) - 1])
}

/// A one-shot summary of a sample set, as printed in experiment tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl Summary {
    /// Summarize a sample set. `None` if empty.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        Some(Summary {
            count: values.len(),
            mean,
            min: values.iter().copied().reduce(f64::min).expect("non-empty"),
            p50: percentile(values, 50.0).expect("non-empty"),
            p95: percentile(values, 95.0).expect("non-empty"),
            p99: percentile(values, 99.0).expect("non-empty"),
            max: values.iter().copied().reduce(f64::max).expect("non-empty"),
            std: var.sqrt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 30.0), Some(20.0));
        assert_eq!(percentile(&v, 40.0), Some(20.0));
        assert_eq!(percentile(&v, 50.0), Some(35.0));
        assert_eq!(percentile(&v, 100.0), Some(50.0));
        assert_eq!(percentile(&v, 0.0), Some(15.0));
    }

    #[test]
    fn percentile_unsorted_input() {
        let v = [50.0, 15.0, 40.0, 20.0, 35.0];
        assert_eq!(percentile(&v, 50.0), Some(35.0));
    }

    #[test]
    fn percentile_single_value() {
        assert_eq!(percentile(&[7.0], 1.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    fn percentile_empty() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(Summary::of(&[]), None);
    }

    #[test]
    fn percentile_out_of_range_clamps() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&v, -5.0), Some(1.0));
        assert_eq!(percentile(&v, 150.0), Some(3.0));
    }

    #[test]
    fn summary_fields() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&v).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        assert!((s.std - 28.86607).abs() < 1e-4);
    }
}
