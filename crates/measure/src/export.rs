//! CSV and terminal (ASCII) rendering for the experiment harness.
//!
//! Every table/figure regenerator in `tango-bench` writes a CSV (for
//! plotting) and prints an ASCII rendering (for eyeballing the shape
//! against the paper's figures).

use crate::series::TimeSeries;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Write series as CSV: `time_<unit>,<name1>,<name2>,...`. All series
/// must share timestamps are NOT required — rows are the union of
/// timestamps; missing cells are empty.
pub fn write_csv(
    path: &Path,
    time_header: &str,
    columns: &[(&str, &TimeSeries)],
) -> io::Result<()> {
    let mut rows: Vec<u64> = Vec::new();
    for (_, s) in columns {
        rows.extend(s.times_ns());
    }
    rows.sort_unstable();
    rows.dedup();

    let mut out = String::new();
    out.push_str(time_header);
    for (name, _) in columns {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');

    // Per-column cursor: series are time-ordered, so a linear merge works.
    let mut cursors = vec![0usize; columns.len()];
    for t in rows {
        let _ = write!(out, "{t}");
        for (ci, (_, s)) in columns.iter().enumerate() {
            out.push(',');
            let times = s.times_ns();
            let mut c = cursors[ci];
            while c < times.len() && times[c] < t {
                c += 1;
            }
            if c < times.len() && times[c] == t {
                let _ = write!(out, "{}", s.values()[c]);
                cursors[ci] = c + 1;
            } else {
                cursors[ci] = c;
            }
        }
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Render one or more series as an ASCII chart (rows = value buckets,
/// columns = time buckets; each series draws with its own glyph). This is
/// deliberately crude — it exists so `experiments fig4-left` visually
/// shows "GTT under NTT with spikes", like the paper's figure.
pub fn ascii_chart(
    columns: &[(&str, &TimeSeries)],
    width: usize,
    height: usize,
    y_label: &str,
) -> String {
    let glyphs = ['*', '+', 'o', 'x', '#', '@'];
    let (mut t_min, mut t_max) = (u64::MAX, 0u64);
    let (mut v_min, mut v_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, s) in columns {
        if let (Some(&t0), Some(&t1)) = (s.times_ns().first(), s.times_ns().last()) {
            t_min = t_min.min(t0);
            t_max = t_max.max(t1);
        }
        if let (Some(lo), Some(hi)) = (s.min(), s.max()) {
            v_min = v_min.min(lo);
            v_max = v_max.max(hi);
        }
    }
    if t_min > t_max || !v_min.is_finite() {
        return String::from("(no data)\n");
    }
    if v_max <= v_min {
        v_max = v_min + 1.0;
    }
    let t_span = (t_max - t_min).max(1);
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in columns.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for (t, v) in s.iter() {
            let x = ((t - t_min) as f64 / t_span as f64 * (width - 1) as f64) as usize;
            let yf = (v - v_min) / (v_max - v_min);
            let y = height - 1 - (yf * (height - 1) as f64).round() as usize;
            grid[y][x] = glyph;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{y_label} [{v_min:.2} .. {v_max:.2}]");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat('-').take(width));
    out.push('\n');
    let mut legend = String::from(" ");
    for (si, (name, _)) in columns.iter().enumerate() {
        let _ = write!(legend, "{}={}  ", glyphs[si % glyphs.len()], name);
    }
    out.push_str(legend.trim_end());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(pairs: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for &(t, v) in pairs {
            s.push(t, v);
        }
        s
    }

    #[test]
    fn csv_merges_timestamps() {
        let a = ts(&[(0, 1.0), (10, 2.0)]);
        let b = ts(&[(10, 5.0), (20, 6.0)]);
        let dir = std::env::temp_dir().join("tango_measure_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merge.csv");
        write_csv(&path, "t_ns", &[("a", &a), ("b", &b)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "t_ns,a,b");
        assert_eq!(lines[1], "0,1,");
        assert_eq!(lines[2], "10,2,5");
        assert_eq!(lines[3], "20,,6");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn csv_empty_columns() {
        let a = TimeSeries::new();
        let dir = std::env::temp_dir().join("tango_measure_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.csv");
        write_csv(&path, "t_ns", &[("a", &a)]).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "t_ns,a\n");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn chart_renders_extremes() {
        let a = ts(&[(0, 1.0), (50, 5.0), (100, 1.0)]);
        let chart = ascii_chart(&[("a", &a)], 21, 5, "ms");
        assert!(chart.contains("[1.00 .. 5.00]"));
        // Peak row (top) has a glyph near the middle column.
        let rows: Vec<&str> = chart.lines().collect();
        assert!(rows[1].contains('*'), "top row: {:?}", rows[1]);
        assert!(chart.contains("*=a"));
    }

    #[test]
    fn chart_no_data() {
        let a = TimeSeries::new();
        assert_eq!(ascii_chart(&[("a", &a)], 10, 3, "ms"), "(no data)\n");
    }

    #[test]
    fn chart_flat_series_does_not_divide_by_zero() {
        let a = ts(&[(0, 2.0), (10, 2.0)]);
        let chart = ascii_chart(&[("a", &a)], 10, 3, "ms");
        assert!(chart.contains('*'));
    }

    #[test]
    fn chart_multiple_series_use_distinct_glyphs() {
        let a = ts(&[(0, 1.0), (10, 1.0)]);
        let b = ts(&[(0, 2.0), (10, 2.0)]);
        let chart = ascii_chart(&[("ntt", &a), ("gtt", &b)], 12, 4, "ms");
        assert!(chart.contains('*') && chart.contains('+'));
        assert!(chart.contains("*=ntt") && chart.contains("+=gtt"));
    }
}
