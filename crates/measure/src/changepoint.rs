//! Online change-point detection (two-sided CUSUM).
//!
//! §5 argues that route changes and instability periods are "worth being
//! realized or avoided with adaptive routing" and that "selecting an
//! alternate path based on live data is required for optimal performance"
//! during route-change events. The controller uses this detector to
//! notice, from the one-way-delay stream alone, that a path's behaviour
//! changed — e.g. the +5 ms GTT route change of Fig. 4 (middle).

use crate::ewma::Ewma;
use serde::{Deserialize, Serialize};

/// Which way the mean moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeDirection {
    /// The delay stepped up (degradation).
    Up,
    /// The delay stepped down (recovery).
    Down,
}

/// Two-sided CUSUM detector over a sample stream.
///
/// The reference mean is a slow EWMA that is *frozen* while evidence of a
/// change accumulates (otherwise the reference would chase the shift and
/// never alarm). `threshold` and `slack` are in the sample's units
/// (nanoseconds for OWD).
#[derive(Debug, Clone)]
pub struct CusumDetector {
    reference: Ewma,
    slack: f64,
    threshold: f64,
    pos: f64,
    neg: f64,
}

impl CusumDetector {
    /// A detector alarming when the cumulative deviation beyond `slack`
    /// exceeds `threshold`.
    pub fn new(reference_alpha: f64, slack: f64, threshold: f64) -> Self {
        assert!(slack >= 0.0 && threshold > 0.0);
        CusumDetector {
            reference: Ewma::new(reference_alpha),
            slack,
            threshold,
            pos: 0.0,
            neg: 0.0,
        }
    }

    /// Feed a sample; returns a detection (and resets) when the
    /// accumulated evidence crosses the threshold.
    pub fn update(&mut self, sample: f64) -> Option<ChangeDirection> {
        let Some(reference) = self.reference.get() else {
            self.reference.update(sample);
            return None;
        };
        let dev = sample - reference;
        self.pos = (self.pos + dev - self.slack).max(0.0);
        self.neg = (self.neg - dev - self.slack).max(0.0);
        if self.pos > self.threshold {
            self.reset_to(sample);
            return Some(ChangeDirection::Up);
        }
        if self.neg > self.threshold {
            self.reset_to(sample);
            return Some(ChangeDirection::Down);
        }
        // No evidence pending → let the reference adapt slowly.
        if self.pos == 0.0 && self.neg == 0.0 {
            self.reference.update(sample);
        }
        None
    }

    /// The current reference mean.
    pub fn reference(&self) -> Option<f64> {
        self.reference.get()
    }

    fn reset_to(&mut self, sample: f64) {
        self.pos = 0.0;
        self.neg = 0.0;
        self.reference.reset();
        self.reference.update(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> CusumDetector {
        // OWD scale: 0.2 ms slack, 5 ms·samples threshold.
        CusumDetector::new(0.05, 200_000.0, 5_000_000.0)
    }

    #[test]
    fn quiet_stream_never_alarms() {
        let mut d = detector();
        for i in 0..10_000 {
            let v = 28_000_000.0 + f64::from(i % 7) * 10_000.0;
            assert_eq!(d.update(v), None);
        }
    }

    #[test]
    fn detects_upward_step() {
        let mut d = detector();
        for _ in 0..100 {
            d.update(28_000_000.0);
        }
        let mut detected_at = None;
        for i in 0..100 {
            if let Some(dir) = d.update(33_000_000.0) {
                assert_eq!(dir, ChangeDirection::Up);
                detected_at = Some(i);
                break;
            }
        }
        // A +5 ms step with a 5 ms·sample threshold: ~2 samples.
        let at = detected_at.expect("step not detected");
        assert!(at <= 3, "took {at} samples");
    }

    #[test]
    fn detects_recovery_down() {
        let mut d = detector();
        for _ in 0..100 {
            d.update(33_000_000.0);
        }
        let mut dir = None;
        for _ in 0..100 {
            if let Some(x) = d.update(28_000_000.0) {
                dir = Some(x);
                break;
            }
        }
        assert_eq!(dir, Some(ChangeDirection::Down));
    }

    #[test]
    fn rearms_after_detection() {
        let mut d = detector();
        for _ in 0..50 {
            d.update(28_000_000.0);
        }
        let mut ups = 0;
        let mut downs = 0;
        for _ in 0..50 {
            if d.update(33_000_000.0) == Some(ChangeDirection::Up) {
                ups += 1;
            }
        }
        for _ in 0..50 {
            if d.update(28_000_000.0) == Some(ChangeDirection::Down) {
                downs += 1;
            }
        }
        assert_eq!(ups, 1, "one alarm per step, then re-baselined");
        assert_eq!(downs, 1);
    }

    #[test]
    fn slow_drift_within_slack_does_not_alarm() {
        let mut d = detector();
        let mut v = 28_000_000.0;
        for _ in 0..5_000 {
            v += 50.0; // 50 ns per sample, well under the 0.2 ms slack
            assert_eq!(d.update(v), None, "drift must be absorbed");
        }
    }

    #[test]
    fn single_outlier_does_not_alarm() {
        let mut d = detector();
        for _ in 0..100 {
            d.update(28_000_000.0);
        }
        // One 78 ms spike (the Fig. 4-right shape): 50 ms over slack once
        // exceeds 5 ms threshold... so the threshold must be judged
        // against the *use*: the controller pairs CUSUM (trend) with
        // percentile triggers (spikes). Here we verify one *mild* outlier
        // (1 ms, under threshold after slack) does not alarm.
        assert_eq!(d.update(29_000_000.0), None);
        for _ in 0..100 {
            assert_eq!(d.update(28_000_000.0), None);
        }
    }
}
