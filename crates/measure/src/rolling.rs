//! Rolling-window statistics.
//!
//! §5: *"To measure sub-second network jitter, we calculated the mean
//! standard deviation of a 1-second rolling window. For example, in the
//! LA to NY direction we found the least noisy path GTT had a rolling
//! window standard deviation of .01ms while Telia had a deviation of
//! .33ms."* — reproduced by experiment T-J.

use crate::series::TimeSeries;
use std::collections::VecDeque;

/// An online rolling window over the trailing `window_ns` of samples,
/// maintaining running sums for O(1) mean/std.
#[derive(Debug, Clone)]
pub struct RollingWindow {
    window_ns: u64,
    samples: VecDeque<(u64, f64)>,
    /// Numerical anchor: sums are of `value - offset` so that the
    /// catastrophic cancellation of Σv² − (Σv)²/n at OWD magnitudes
    /// (~3e7 ns) never appears. The anchor is the first sample seen.
    offset: f64,
    sum: f64,
    sum_sq: f64,
}

impl RollingWindow {
    /// A window of the given duration.
    pub fn new(window_ns: u64) -> Self {
        assert!(window_ns > 0, "window must be positive");
        RollingWindow {
            window_ns,
            samples: VecDeque::new(),
            offset: 0.0,
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Add a sample and evict everything older than `t - window`
    /// (keeping the half-open interval `(t - window, t]`).
    ///
    /// Non-finite values are ignored: a single NaN in the running sums
    /// would poison mean/std for the rest of the window.
    pub fn push(&mut self, t_ns: u64, value: f64) {
        if !value.is_finite() {
            return;
        }
        if self.samples.is_empty() {
            self.offset = value;
            self.sum = 0.0;
            self.sum_sq = 0.0;
        }
        let d = value - self.offset;
        self.samples.push_back((t_ns, value));
        self.sum += d;
        self.sum_sq += d * d;
        if t_ns >= self.window_ns {
            let cutoff = t_ns - self.window_ns;
            while let Some(&(t0, v0)) = self.samples.front() {
                if t0 > cutoff || self.samples.len() == 1 {
                    break;
                }
                self.samples.pop_front();
                let d0 = v0 - self.offset;
                self.sum -= d0;
                self.sum_sq -= d0 * d0;
            }
            // After heavy turnover the residual sums carry accumulated
            // rounding error; when only one sample remains, re-anchor so
            // the state is exact again (a single sample has zero variance
            // by definition).
            if self.samples.len() == 1 {
                if let Some(&(_, only)) = self.samples.front() {
                    self.offset = only;
                }
                self.sum = 0.0;
                self.sum_sq = 0.0;
            }
        }
    }

    /// Samples currently inside the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Is the window empty?
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean over the window.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.offset + self.sum / self.samples.len() as f64)
        }
    }

    /// Population standard deviation over the window.
    ///
    /// Shifted-sums variance can still go microscopically negative from
    /// floating-point rounding; clamped at zero.
    pub fn std(&self) -> Option<f64> {
        let n = self.samples.len();
        if n == 0 {
            return None;
        }
        let m = self.sum / n as f64; // mean of shifted values
        let var = (self.sum_sq / n as f64 - m * m).max(0.0);
        Some(var.sqrt())
    }
}

/// The paper's jitter metric: slide a window across the series (each
/// sample as right edge, once the window has warmed up) and average the
/// per-position standard deviations.
pub fn mean_rolling_std(series: &TimeSeries, window_ns: u64) -> Option<f64> {
    if series.is_empty() {
        return None;
    }
    let mut w = RollingWindow::new(window_ns);
    let mut acc = 0.0;
    let mut n = 0u64;
    let t0 = series.times_ns()[0];
    for (t, v) in series.iter() {
        w.push(t, v);
        // Only count positions where a full window of history exists,
        // otherwise the warm-up deflates the metric.
        if t >= t0 + window_ns {
            acc += w.std().expect("non-empty window");
            n += 1;
        }
    }
    if n == 0 {
        // Series shorter than one window: fall back to whole-series std.
        return series.std();
    }
    Some(acc / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_respects_window() {
        let mut w = RollingWindow::new(100);
        w.push(0, 1.0);
        w.push(50, 2.0);
        w.push(100, 3.0); // cutoff 0: sample at 0 is NOT > 0, evicted
        assert_eq!(w.len(), 2);
        w.push(151, 4.0); // cutoff 51: evicts t=50
        assert_eq!(w.len(), 2);
        assert_eq!(w.mean(), Some(3.5));
    }

    #[test]
    fn newest_sample_never_evicted() {
        let mut w = RollingWindow::new(10);
        w.push(0, 1.0);
        w.push(1_000_000, 5.0); // way past the window
        assert_eq!(w.len(), 1);
        assert_eq!(w.mean(), Some(5.0));
    }

    #[test]
    fn std_matches_direct_computation() {
        let mut w = RollingWindow::new(1_000_000);
        let vals = [3.0, 7.0, 7.0, 19.0];
        for (i, v) in vals.iter().enumerate() {
            w.push(i as u64, *v);
        }
        let mean = 9.0;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 4.0;
        assert!((w.std().unwrap() - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn constant_series_has_zero_rolling_std() {
        let mut s = TimeSeries::new();
        for i in 0..2_000u64 {
            s.push(i * 10_000_000, 28.0);
        }
        let j = mean_rolling_std(&s, 1_000_000_000).unwrap();
        assert_eq!(j, 0.0);
    }

    #[test]
    fn rolling_std_tracks_noise_scale() {
        // Deterministic pseudo-noise with amplitude a: std ∝ a.
        let noisy = |amp: f64| {
            let mut s = TimeSeries::new();
            for i in 0..5_000u64 {
                let phase = (i as f64 * 0.7).sin();
                s.push(i * 10_000_000, 28.0 + amp * phase);
            }
            mean_rolling_std(&s, 1_000_000_000).unwrap()
        };
        let j1 = noisy(0.01);
        let j33 = noisy(0.33);
        assert!((j33 / j1 - 33.0).abs() < 0.5, "ratio {}", j33 / j1);
    }

    #[test]
    fn short_series_falls_back_to_global_std() {
        let mut s = TimeSeries::new();
        s.push(0, 1.0);
        s.push(10, 3.0);
        let j = mean_rolling_std(&s, 1_000_000_000).unwrap();
        assert_eq!(j, s.std().unwrap());
    }

    #[test]
    fn empty_series_is_none() {
        assert_eq!(mean_rolling_std(&TimeSeries::new(), 100), None);
        let w = RollingWindow::new(10);
        assert_eq!(w.mean(), None);
        assert_eq!(w.std(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn non_finite_samples_ignored() {
        let mut w = RollingWindow::new(100);
        w.push(0, 1.0);
        w.push(10, f64::NAN);
        w.push(20, f64::NEG_INFINITY);
        w.push(30, 3.0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.mean(), Some(2.0));
        assert!(w.std().unwrap().is_finite());
    }

    #[test]
    fn numerical_stability_with_large_offsets() {
        // OWD values are ~3e7 ns; make sure cancellation doesn't produce
        // NaN or negative variance.
        let mut w = RollingWindow::new(1_000_000_000);
        for i in 0..10_000u64 {
            w.push(i * 100_000, 28_000_000.0 + (i % 3) as f64);
        }
        let std = w.std().unwrap();
        assert!(std.is_finite() && (0.0..2.0).contains(&std), "std {std}");
    }
}
