//! Fixed-interval averaging.
//!
//! §5: *"We ran the eBPF program in our two servers for an eight-day
//! period and recorded the average one-way delay for every path at 10 ms
//! intervals."* The averager bins raw per-packet samples into fixed
//! windows and emits one averaged point per non-empty window, keyed at
//! the window's start time.

use crate::series::TimeSeries;

/// Online fixed-interval averager.
#[derive(Debug, Clone)]
pub struct IntervalAverager {
    width_ns: u64,
    current_bin: Option<u64>,
    sum: f64,
    count: u64,
    out: TimeSeries,
}

impl IntervalAverager {
    /// An averager with the given bin width (e.g. 10 ms).
    pub fn new(width_ns: u64) -> Self {
        assert!(width_ns > 0, "bin width must be positive");
        IntervalAverager {
            width_ns,
            current_bin: None,
            sum: 0.0,
            count: 0,
            out: TimeSeries::new(),
        }
    }

    fn bin_of(&self, t_ns: u64) -> u64 {
        t_ns / self.width_ns
    }

    /// Add a raw sample. Samples must arrive in time order.
    pub fn push(&mut self, t_ns: u64, value: f64) {
        let bin = self.bin_of(t_ns);
        match self.current_bin {
            Some(b) if b == bin => {
                self.sum += value;
                self.count += 1;
            }
            Some(b) => {
                assert!(bin > b, "interval averager needs monotonic time");
                self.flush_current();
                self.current_bin = Some(bin);
                self.sum = value;
                self.count = 1;
            }
            None => {
                self.current_bin = Some(bin);
                self.sum = value;
                self.count = 1;
            }
        }
    }

    fn flush_current(&mut self) {
        if let Some(b) = self.current_bin {
            if self.count > 0 {
                self.out
                    .push(b * self.width_ns, self.sum / self.count as f64);
            }
        }
        self.sum = 0.0;
        self.count = 0;
    }

    /// Flush the open bin and return the averaged series.
    pub fn finish(mut self) -> TimeSeries {
        self.flush_current();
        self.out
    }

    /// Peek at the completed bins so far (not including the open one).
    pub fn completed(&self) -> &TimeSeries {
        &self.out
    }
}

/// Offline convenience: bin-average an existing series.
pub fn bin_average(series: &TimeSeries, width_ns: u64) -> TimeSeries {
    let mut avg = IntervalAverager::new(width_ns);
    for (t, v) in series.iter() {
        avg.push(t, v);
    }
    avg.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_within_bins() {
        let mut a = IntervalAverager::new(10);
        a.push(0, 1.0);
        a.push(5, 3.0); // bin 0 avg 2.0
        a.push(12, 10.0); // bin 1 avg 10.0
        a.push(25, 4.0);
        a.push(29, 6.0); // bin 2 avg 5.0
        let s = a.finish();
        let got: Vec<(u64, f64)> = s.iter().collect();
        assert_eq!(got, vec![(0, 2.0), (10, 10.0), (20, 5.0)]);
    }

    #[test]
    fn empty_bins_are_skipped() {
        let mut a = IntervalAverager::new(10);
        a.push(0, 1.0);
        a.push(95, 2.0); // bins 1..=8 empty
        let s = a.finish();
        let got: Vec<(u64, f64)> = s.iter().collect();
        assert_eq!(got, vec![(0, 1.0), (90, 2.0)]);
    }

    #[test]
    fn single_sample() {
        let mut a = IntervalAverager::new(1_000);
        a.push(500, 42.0);
        let s = a.finish();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(0, 42.0)]);
    }

    #[test]
    fn empty_finish() {
        let a = IntervalAverager::new(10);
        assert!(a.finish().is_empty());
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn rejects_backwards_bins() {
        let mut a = IntervalAverager::new(10);
        a.push(50, 1.0);
        a.push(10, 2.0);
    }

    #[test]
    fn bin_boundaries_are_half_open() {
        let mut a = IntervalAverager::new(10);
        a.push(9, 1.0);
        a.push(10, 3.0); // exactly on the boundary: starts bin 1
        let s = a.finish();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(0, 1.0), (10, 3.0)]);
    }

    #[test]
    fn offline_matches_online() {
        let mut raw = TimeSeries::new();
        for i in 0..1000u64 {
            raw.push(i * 3, (i % 7) as f64);
        }
        let offline = bin_average(&raw, 10);
        let mut online = IntervalAverager::new(10);
        for (t, v) in raw.iter() {
            online.push(t, v);
        }
        assert_eq!(offline, online.finish());
    }

    #[test]
    fn completed_excludes_open_bin() {
        let mut a = IntervalAverager::new(10);
        a.push(0, 1.0);
        a.push(15, 2.0);
        assert_eq!(a.completed().len(), 1); // bin 0 flushed, bin 1 open
    }
}
