//! Timestamped sample series.

use serde::{Deserialize, Serialize};

/// A time series of (timestamp ns, value) samples in non-decreasing
/// time order (enforced on push).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    times_ns: Vec<u64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// With pre-allocated capacity (an 8-day / 10 ms series is ~69 M
    /// samples; experiments pre-size).
    pub fn with_capacity(n: usize) -> Self {
        TimeSeries {
            times_ns: Vec::with_capacity(n),
            values: Vec::with_capacity(n),
        }
    }

    /// Append a sample. Panics if time goes backwards (a harness bug).
    pub fn push(&mut self, t_ns: u64, value: f64) {
        if let Some(&last) = self.times_ns.last() {
            assert!(
                t_ns >= last,
                "time series must be monotonic: {t_ns} < {last}"
            );
        }
        self.times_ns.push(t_ns);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times_ns.len()
    }

    /// Is the series empty?
    pub fn is_empty(&self) -> bool {
        self.times_ns.is_empty()
    }

    /// Iterate over (t_ns, value).
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.times_ns
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// The timestamps.
    pub fn times_ns(&self) -> &[u64] {
        &self.times_ns
    }

    /// The values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sub-series with `start_ns <= t < end_ns` (binary-searched).
    pub fn slice(&self, start_ns: u64, end_ns: u64) -> TimeSeries {
        let lo = self.times_ns.partition_point(|&t| t < start_ns);
        let hi = self.times_ns.partition_point(|&t| t < end_ns);
        TimeSeries {
            times_ns: self.times_ns[lo..hi].to_vec(),
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// Mean value, or None when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Minimum value.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum value.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Population standard deviation.
    pub fn std(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var =
            self.values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / self.values.len() as f64;
        Some(var.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(pairs: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for &(t, v) in pairs {
            s.push(t, v);
        }
        s
    }

    #[test]
    fn basic_stats() {
        let s = series(&[(0, 1.0), (10, 2.0), (20, 3.0), (30, 4.0)]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        let std = s.std().unwrap();
        assert!((std - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_none() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.std(), None);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn rejects_time_regression() {
        let mut s = TimeSeries::new();
        s.push(10, 1.0);
        s.push(5, 2.0);
    }

    #[test]
    fn equal_timestamps_allowed() {
        let s = series(&[(10, 1.0), (10, 2.0)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn slice_respects_half_open_bounds() {
        let s = series(&[(0, 0.0), (10, 1.0), (20, 2.0), (30, 3.0)]);
        let sub = s.slice(10, 30);
        assert_eq!(sub.times_ns(), &[10, 20]);
        assert_eq!(sub.values(), &[1.0, 2.0]);
        assert!(s.slice(40, 50).is_empty());
        assert_eq!(s.slice(0, 100).len(), 4);
    }

    #[test]
    fn iter_pairs() {
        let s = series(&[(1, 10.0), (2, 20.0)]);
        let v: Vec<(u64, f64)> = s.iter().collect();
        assert_eq!(v, vec![(1, 10.0), (2, 20.0)]);
    }
}
