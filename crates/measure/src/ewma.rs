//! Exponentially weighted moving average — the smoother behind the
//! adaptive path-selection policies in `tango-control`.

use serde::{Deserialize, Serialize};

/// An EWMA with smoothing factor `alpha` (weight of the newest sample).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// A new EWMA; `alpha` must be in (0, 1].
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0,1], got {alpha}"
        );
        Ewma { alpha, value: None }
    }

    /// Feed a sample; returns the updated estimate.
    ///
    /// Non-finite samples (NaN/∞ from adversarially skewed inputs) are
    /// ignored — one would otherwise stick the estimate at NaN forever.
    pub fn update(&mut self, sample: f64) -> f64 {
        if !sample.is_finite() {
            return self.value.unwrap_or(sample);
        }
        let v = match self.value {
            None => sample,
            Some(prev) => prev + self.alpha * (sample - prev),
        };
        self.value = Some(v);
        v
    }

    /// The current estimate (None before the first sample).
    pub fn get(&self) -> Option<f64> {
        self.value
    }

    /// Drop all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.get(), None);
        assert_eq!(e.update(5.0), 5.0);
        assert_eq!(e.get(), Some(5.0));
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.update(42.0);
        }
        assert!((e.get().unwrap() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_one_tracks_exactly() {
        let mut e = Ewma::new(1.0);
        e.update(1.0);
        assert_eq!(e.update(9.0), 9.0);
    }

    #[test]
    fn smooths_step_change_gradually() {
        let mut e = Ewma::new(0.1);
        e.update(0.0);
        let after_one = e.update(10.0);
        assert!((after_one - 1.0).abs() < 1e-9); // 0 + 0.1*(10-0)
        for _ in 0..100 {
            e.update(10.0);
        }
        assert!((e.get().unwrap() - 10.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_zero_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn non_finite_samples_ignored() {
        let mut e = Ewma::new(0.5);
        e.update(4.0);
        assert_eq!(e.update(f64::NAN), 4.0);
        assert_eq!(e.update(f64::INFINITY), 4.0);
        assert_eq!(e.get(), Some(4.0));
        // Before any finite sample: estimate stays unset.
        let mut fresh = Ewma::new(0.5);
        assert!(fresh.update(f64::NAN).is_nan());
        assert_eq!(fresh.get(), None);
        assert_eq!(fresh.update(2.0), 2.0);
    }

    #[test]
    fn reset_clears() {
        let mut e = Ewma::new(0.5);
        e.update(3.0);
        e.reset();
        assert_eq!(e.get(), None);
        assert_eq!(e.update(7.0), 7.0);
    }
}
