//! # tango-measure — one-way-delay statistics
//!
//! The measurement pipeline of §4.2/§5, as a library:
//!
//! * [`IntervalAverager`] — "recorded the average one-way delay for every
//!   path at 10 ms intervals";
//! * [`rolling::mean_rolling_std`] — "to measure sub-second network
//!   jitter, we calculated the mean standard deviation of a 1-second
//!   rolling window";
//! * [`SeqTracker`] — "adding tunnel-specific sequence numbers on packets
//!   can allow Tango to additionally compute loss and reordering" (§3);
//! * [`Ewma`], [`Summary`] and percentiles for the routing policies in
//!   `tango-control`;
//! * [`CusumDetector`] — online change-point detection for the Fig. 4
//!   route-change/instability incidents;
//! * [`TimeSeries`] plus CSV/ASCII export for the experiment harness.
//!
//! All delay values are nanoseconds as `f64` at the statistics layer
//! (sub-nanosecond precision is meaningless; dynamic range is what
//! matters), and timestamps are nanoseconds as `u64`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod changepoint;
pub mod ewma;
pub mod export;
pub mod interval;
pub mod loss;
pub mod owd;
pub mod percentile;
pub mod replay;
pub mod rolling;
pub mod series;

pub use changepoint::{ChangeDirection, CusumDetector};
pub use ewma::Ewma;
pub use interval::IntervalAverager;
pub use loss::{SeqEvent, SeqTracker};
pub use owd::{saturating_owd_ns, PlausibilityConfig, PlausibilityGate};
pub use percentile::{percentile, Summary};
pub use replay::ReplayWindow;
pub use rolling::{mean_rolling_std, RollingWindow};
pub use series::TimeSeries;
