//! Property-based tests: every incremental statistic must agree with a
//! naive recomputation from scratch, on arbitrary inputs.

use proptest::prelude::*;
use tango_measure::{
    interval::bin_average, percentile, Ewma, RollingWindow, SeqTracker, Summary, TimeSeries,
};

fn arb_stream() -> impl Strategy<Value = Vec<(u64, f64)>> {
    // Monotonic times with random gaps; OWD-scale values.
    (proptest::collection::vec((0u64..50_000_000, 0u32..60_000_000), 1..200)).prop_map(|raw| {
        let mut t = 0u64;
        raw.into_iter()
            .map(|(gap, v)| {
                t += gap;
                (t, 20_000_000.0 + f64::from(v))
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn rolling_window_matches_naive(stream in arb_stream(), window_ns in 1u64..100_000_000) {
        let mut w = RollingWindow::new(window_ns);
        for (i, &(t, v)) in stream.iter().enumerate() {
            w.push(t, v);
            // Naive: samples in (t - window, t], but never evicting the
            // newest (matching the documented semantics).
            let cutoff = t.saturating_sub(window_ns);
            let kept: Vec<f64> = stream[..=i]
                .iter()
                .filter(|&&(ti, _)| ti > cutoff || (t < window_ns))
                .map(|&(_, v)| v)
                .collect();
            // The window always retains at least the newest sample.
            let kept = if kept.is_empty() { vec![v] } else { kept };
            let mean = kept.iter().sum::<f64>() / kept.len() as f64;
            let var = kept.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / kept.len() as f64;
            prop_assert_eq!(w.len(), kept.len(), "at sample {}", i);
            prop_assert!((w.mean().unwrap() - mean).abs() < 1e-3, "mean {} vs {}", w.mean().unwrap(), mean);
            prop_assert!((w.std().unwrap() - var.sqrt()).abs() < 1.0, "std {} vs {}", w.std().unwrap(), var.sqrt());
        }
    }

    #[test]
    fn interval_averager_matches_naive(stream in arb_stream(), width in 1u64..50_000_000) {
        let mut series = TimeSeries::new();
        for &(t, v) in &stream {
            series.push(t, v);
        }
        let binned = bin_average(&series, width);
        // Naive: group by t / width.
        let mut naive: Vec<(u64, f64, u64)> = Vec::new(); // (bin, sum, count)
        for &(t, v) in &stream {
            let bin = t / width;
            match naive.last_mut() {
                Some((b, sum, n)) if *b == bin => {
                    *sum += v;
                    *n += 1;
                }
                _ => naive.push((bin, v, 1)),
            }
        }
        prop_assert_eq!(binned.len(), naive.len());
        for ((t, avg), (bin, sum, n)) in binned.iter().zip(&naive) {
            prop_assert_eq!(t, bin * width);
            prop_assert!((avg - sum / *n as f64).abs() < 1e-6);
        }
        // Averaging preserves the global mean when all bins have equal
        // weight 1 sample... (not generally true) — but it must stay
        // within [min, max].
        prop_assert!(binned.min().unwrap() >= series.min().unwrap() - 1e-9);
        prop_assert!(binned.max().unwrap() <= series.max().unwrap() + 1e-9);
    }

    #[test]
    fn ewma_stays_within_input_envelope(values in proptest::collection::vec(0.0f64..1e9, 1..100), alpha in 0.01f64..1.0) {
        let mut e = Ewma::new(alpha);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in values {
            lo = lo.min(v);
            hi = hi.max(v);
            let est = e.update(v);
            prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "{est} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn summary_orderings_hold(values in proptest::collection::vec(0.0f64..1e9, 1..200)) {
        let s = Summary::of(&values).unwrap();
        prop_assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std >= 0.0);
        prop_assert_eq!(s.count, values.len());
    }

    #[test]
    fn percentile_brackets_every_value(values in proptest::collection::vec(0.0f64..100.0, 1..100), p in 0.0f64..100.0) {
        let v = percentile(&values, p).unwrap();
        prop_assert!(values.contains(&v), "percentile must be an observed value");
    }

    #[test]
    fn seq_tracker_matches_set_model_without_reorder(
        // In-order delivery with random gaps: loss = skipped count.
        gaps in proptest::collection::vec(0u32..5, 1..200),
    ) {
        let mut tracker = SeqTracker::new();
        let mut seq = 0u32;
        let mut skipped = 0u64;
        let mut received = 0u64;
        for gap in gaps {
            seq += gap; // skip `gap` numbers
            skipped += u64::from(gap);
            tracker.record(seq);
            received += 1;
            seq += 1;
        }
        // First arrival can't know about earlier skips: the model counts
        // only post-first gaps; the tracker similarly starts at the first
        // seen sequence number.
        prop_assert_eq!(tracker.received(), received);
        let first_gap = {
            // gap before the first arrival is invisible to the tracker
            0
        };
        let _ = first_gap;
        prop_assert!(tracker.lost() <= skipped);
        prop_assert_eq!(tracker.duplicates(), 0);
        prop_assert_eq!(tracker.reordered(), 0);
    }

    #[test]
    fn seq_tracker_full_permutation_within_window_recovers_everything(
        mut order in proptest::collection::vec(0u32..64, 64..65).prop_map(|_| {
            let v: Vec<u32> = (0..64).collect();
            v
        }),
        swaps in proptest::collection::vec((0usize..64, 0usize..64), 0..100),
    ) {
        for (a, b) in swaps {
            order.swap(a, b);
        }
        let mut tracker = SeqTracker::new();
        for s in order {
            tracker.record(s);
        }
        // All 64 sequence numbers arrive (in any order within the 1024
        // window): nothing is ultimately lost or duplicated.
        prop_assert_eq!(tracker.received(), 64);
        prop_assert_eq!(tracker.lost(), 0);
        prop_assert_eq!(tracker.duplicates(), 0);
    }

    #[test]
    fn timeseries_slice_partitions(stream in arb_stream(), cut in 0u64..60_000_000) {
        let mut s = TimeSeries::new();
        for &(t, v) in &stream {
            s.push(t, v);
        }
        let end = s.times_ns().last().copied().unwrap() + 1;
        let left = s.slice(0, cut);
        let right = s.slice(cut, end);
        prop_assert_eq!(left.len() + right.len(), s.len());
        if let (Some(lmax), Some(rmin)) = (left.times_ns().last(), right.times_ns().first()) {
            prop_assert!(lmax < &cut);
            prop_assert!(rmin >= &cut);
        }
    }
}
